// Velocity-Verlet integration driving the force engine over the HTVM
// machine (forall over particles), plus a serial reference path.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "litlx/forall.h"
#include "md/forces.h"
#include "md/system.h"

namespace htvm::md {

struct StepReport {
  double potential_energy = 0.0;
  double kinetic_energy = 0.0;
  double total_energy() const { return potential_energy + kinetic_energy; }
  std::uint64_t pairs_evaluated = 0;
};

struct IntegratorOptions {
  std::string schedule;  // force-loop policy ("" = hints/guided)
  bool adaptive = false;
  std::string site = "md_forces";
  // Verlet neighbour lists: rebuilt only when a particle has drifted more
  // than skin/2 since the last build; otherwise the per-step 27-cell scan
  // is replaced by the precomputed partner list.
  bool use_verlet = false;
  double verlet_skin = 0.4;
  // Berendsen thermostat (NVT): velocities are rescaled toward
  // `target_temperature` with time constant `tau_t` (in units of dt;
  // larger = gentler). 0 keeps NVE.
  double target_temperature = 0.0;
  double thermostat_tau = 100.0;
};

class Integrator {
 public:
  using Options = IntegratorOptions;

  // The integrator keeps its own cell list sized from the system cutoff.
  Integrator(litlx::Machine& machine, System& system, Options options = {});

  // One velocity-Verlet step on the machine. Deterministic for any worker
  // count (per-particle force writes only).
  StepReport step();
  // Serial reference step with identical arithmetic.
  StepReport step_serial();

  void run(std::uint32_t steps);
  std::uint64_t steps_done() const { return steps_; }
  const CellList& cells() const { return cells_; }
  // Neighbour-list rebuilds performed so far (0 unless use_verlet).
  std::uint64_t neighbor_rebuilds() const {
    return neighbors_ ? neighbors_->rebuilds() : 0;
  }

 private:
  template <bool kParallel>
  StepReport do_step();

  litlx::Machine& machine_;
  System& system_;
  Options options_;
  CellList cells_;
  std::unique_ptr<NeighborList> neighbors_;
  bool forces_ready_ = false;
  std::uint64_t steps_ = 0;
};

}  // namespace htvm::md
