// Quickstart: a tour of the LITL-X / HTVM public API.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The program walks through every LITL-X construct class from the paper:
// the three-level thread hierarchy, application-level context switching,
// futures with buffered consumers, parcels (moving work to data),
// percolation, atomic blocks, and a hint-steered parallel loop.
#include <atomic>
#include <cstdio>
#include <numeric>
#include <vector>

#include "litlx/litlx.h"

using namespace htvm;

int main() {
  // A 4-node machine, 2 thread units per node (8 workers).
  litlx::MachineOptions options;
  options.config.nodes = 4;
  options.config.thread_units_per_node = 2;
  options.hint_script = R"(
    # A domain expert suggests guided scheduling for the big loop.
    hint loop "big_loop" { target = runtime; schedule = guided; }
  )";
  litlx::Machine machine(options);
  std::printf("machine: %u nodes x %u thread units\n",
              machine.runtime().num_nodes(),
              machine.options().config.thread_units_per_node);

  // --- 1. The thread hierarchy: LGT -> SGT -> TGT --------------------
  std::atomic<int> tgt_count{0};
  machine.spawn_lgt(0, [&] {
    std::printf("LGT: running in a fiber on node %u\n",
                rt::Runtime::current()->current_node());
    litlx::Machine::yield();  // context switch in the instruction stream
    std::printf("LGT: resumed after an explicit yield\n");
    for (int i = 0; i < 4; ++i) {
      rt::Runtime::current()->spawn_sgt([&] {
        // Each SGT enables two tiny-grain strands sharing its state.
        rt::Runtime::current()->spawn_tgt([&] { ++tgt_count; });
        rt::Runtime::current()->spawn_tgt([&] { ++tgt_count; });
      });
    }
  });
  machine.wait_idle();
  std::printf("hierarchy: 1 LGT spawned 4 SGTs spawned %d TGTs\n\n",
              tgt_count.load());

  // --- 2. Futures: eager producer-consumer with buffered requests ----
  sync::Future<double> result;
  machine.spawn_lgt(1, [&] {
    // The fiber suspends here; the worker stays busy with other threads.
    const double v = litlx::Machine::await(result);
    std::printf("future: consumer LGT woke with value %.2f\n", v);
  });
  machine.spawn_sgt([&] { result.set(6.28); });
  machine.wait_idle();

  // --- 3. Parcels: move the work to the data -------------------------
  const mem::GlobalAddress remote_array =
      machine.runtime().memory().alloc(3, 16 * sizeof(double));
  auto* data = static_cast<double*>(
      machine.runtime().memory().raw(remote_array));
  std::iota(data, data + 16, 1.0);
  sync::Future<double> remote_sum;
  machine.invoke_at(3, /*modeled_bytes=*/64, [&] {
    double sum = 0;
    for (int i = 0; i < 16; ++i) sum += data[i];
    remote_sum.set(sum);
  });
  std::printf("parcel: sum computed on node 3 = %.0f\n",
              litlx::Machine::await(remote_sum));

  // --- 4. Percolation: stage data before the task runs ---------------
  const auto object = machine.objects().create(/*home=*/0, 256);
  machine.percolate_and_run(/*node=*/2, {object}, [&] {
    const bool staged = machine.percolation().staged(2, object) != nullptr;
    std::printf("percolation: task on node 2 found its input %s\n",
                staged ? "staged locally" : "missing");
  });
  machine.wait_idle();

  // --- 5. Atomic blocks over multiple words --------------------------
  long alice = 100, bob = 0;
  std::atomic<int> transfers{0};
  for (int i = 0; i < 100; ++i) {
    machine.spawn_sgt([&] {
      machine.atomically({&alice, &bob}, [&] {
        alice -= 1;
        bob += 1;
      });
      ++transfers;
    });
  }
  machine.wait_idle();
  std::printf("atomic blocks: %d transfers, alice=%ld bob=%ld\n\n",
              transfers.load(), alice, bob);

  // --- 6. A hint-steered parallel loop --------------------------------
  std::vector<double> squares(100000);
  litlx::ForallOptions fopts;
  fopts.site = "big_loop";  // picks up the "guided" hint loaded above
  const litlx::ForallResult r = litlx::forall(
      machine, 0, static_cast<std::int64_t>(squares.size()),
      [&](std::int64_t i) {
        squares[static_cast<std::size_t>(i)] =
            static_cast<double>(i) * static_cast<double>(i);
      },
      fopts);
  std::printf("forall: policy=%s chunks=%llu span=%.3f ms\n",
              r.policy.c_str(),
              static_cast<unsigned long long>(r.chunks),
              r.span_seconds * 1e3);
  std::printf("monitor says:\n%s", machine.monitor().summary().c_str());
  return 0;
}
