file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_ssp_threads.dir/bench_e5_ssp_threads.cc.o"
  "CMakeFiles/bench_e5_ssp_threads.dir/bench_e5_ssp_threads.cc.o.d"
  "bench_e5_ssp_threads"
  "bench_e5_ssp_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_ssp_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
