#include "obs/sampler.h"

#include <algorithm>

namespace htvm::obs {

Sampler::Sampler(MetricsRegistry& registry, Options options)
    : registry_(registry), options_(options) {
  if (options_.ring_capacity == 0) options_.ring_capacity = 1;
}

Sampler::~Sampler() { stop(); }

void Sampler::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  // Prime the baseline so the first periodic delta covers only the first
  // interval, not the registry's whole history.
  sample_once();
  thread_ = std::thread([this] {
    while (running_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(options_.period);
      if (!running_.load(std::memory_order_acquire)) break;
      sample_once();
    }
  });
}

void Sampler::stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

void Sampler::sample_once() {
  const TelemetrySnapshot snap = registry_.snapshot();
  const auto now = std::chrono::steady_clock::now();
  SampleDelta delta;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    delta.sequence = samples_.load(std::memory_order_relaxed) + 1;
    delta.dt_seconds =
        primed_ ? std::chrono::duration<double>(now - prev_time_).count()
                : 0.0;
    delta.deltas.reserve(snap.metrics.size());
    for (const MetricValue& m : snap.metrics) {
      double value = m.value;
      if (m.kind == MetricKind::kCounter) {
        const auto it = prev_counters_.find(m.name);
        value = it == prev_counters_.end() ? m.value : m.value - it->second;
        prev_counters_[m.name] = m.value;
      }
      delta.deltas.push_back(MetricValue{m.name, m.kind, value});
    }
    delta.histograms = snap.histograms;
    prev_time_ = now;
    primed_ = true;
    ring_.push_back(delta);
    while (ring_.size() > options_.ring_capacity) ring_.pop_front();
  }
  samples_.fetch_add(1, std::memory_order_relaxed);
  if (callback_) callback_(delta);
}

std::vector<SampleDelta> Sampler::recent(std::size_t max_items) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t n = max_items == 0
                            ? ring_.size()
                            : std::min(max_items, ring_.size());
  return std::vector<SampleDelta>(ring_.end() - static_cast<std::ptrdiff_t>(n),
                                  ring_.end());
}

}  // namespace htvm::obs
