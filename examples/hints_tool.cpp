// Structured-hints tool: validate, normalize, and query hint scripts --
// the command-line face of the paper's Fig. 3 workflow, where a domain
// expert iterates on the script that steers the system software.
//
//   ./build/examples/hints_tool check  <script.hints>
//   ./build/examples/hints_tool dump   <script.hints>   # normalized form
//   ./build/examples/hints_tool query  <script.hints> <loop-site>
//   ./build/examples/hints_tool demo                    # built-in sample
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "hints/knowledge_base.h"

using namespace htvm;

namespace {

constexpr const char* kDemoScript = R"(
# pNeocortex mapping hints (paper Fig. 3)
hint loop "neuron_update" {
  target = runtime;
  kind = computation;
  schedule = guided;
  chunk = 64;
  priority = 8;
}
hint object "synapse_table" {
  target = runtime;
  kind = locality;
  placement = replicate;
}
hint monitor "spike_rate" {
  target = monitor;
  kind = monitoring;
  metric = chunk_time;
  window = 128;
}
)";

std::string read_file(const char* path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

int check(const std::string& source) {
  const hints::ParseResult result = hints::parse(source);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("ok: %zu hints\n", result.hints.size());
  int by_target[3] = {};
  for (const auto& hint : result.hints)
    ++by_target[static_cast<int>(hint.target)];
  std::printf("  compiler: %d, runtime: %d, monitor: %d\n", by_target[0],
              by_target[1], by_target[2]);
  return 0;
}

int dump(const std::string& source) {
  const hints::ParseResult result = hints::parse(source);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("%s", hints::to_script(result.hints).c_str());
  return 0;
}

int query(const std::string& source, const char* site) {
  hints::KnowledgeBase kb;
  const std::string err = kb.load_script(source);
  if (!err.empty()) {
    std::fprintf(stderr, "error: %s\n", err.c_str());
    return 1;
  }
  const auto schedule = kb.loop_schedule(site);
  const auto chunk = kb.loop_chunk(site);
  if (!schedule && !chunk) {
    std::printf("no loop hint for site \"%s\"\n", site);
    return 0;
  }
  std::printf("site \"%s\": schedule=%s chunk=%lld\n", site,
              schedule.value_or("(default)").c_str(),
              static_cast<long long>(chunk.value_or(-1)));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "demo") == 0) {
    std::printf("--- demo script ---\n%s--- normalized ---\n", kDemoScript);
    return dump(kDemoScript);
  }
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s check|dump <script> | query <script> <site> | "
                 "demo\n",
                 argv[0]);
    return 2;
  }
  const std::string source = read_file(argv[2]);
  if (source.empty()) {
    std::fprintf(stderr, "error: cannot read %s\n", argv[2]);
    return 2;
  }
  if (std::strcmp(argv[1], "check") == 0) return check(source);
  if (std::strcmp(argv[1], "dump") == 0) return dump(source);
  if (std::strcmp(argv[1], "query") == 0 && argc >= 4)
    return query(source, argv[3]);
  std::fprintf(stderr, "unknown command %s\n", argv[1]);
  return 2;
}
