// Simulated HTVM machine: nodes x thread units executing coroutine tasks in
// virtual time.
//
// A SimTask is a C++20 coroutine that co_awaits machine operations:
//
//   sim::SimTask worker(sim::SimContext& ctx) {
//     co_await ctx.compute(100);                 // TU busy for 100 cycles
//     co_await ctx.load(MemLevel::kLocalDram);   // split-phase: TU may run
//                                                // another ready task while
//                                                // the access is in flight
//     co_await ctx.remote_load(/*node=*/3, 64);  // network round trip
//   }
//
// Blocking operations release the thread unit, which then dispatches the
// next ready task -- this is exactly the paper's latency-hiding-through-
// multithreading mechanism, and experiment E2 measures it directly.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "machine/config.h"
#include "sim/engine.h"
#include "trace/tracer.h"
#include "util/rng.h"
#include "util/stats.h"

namespace htvm::sim {

class SimMachine;
struct TaskState;
class SimContext;
class SimEvent;

// ---------------------------------------------------------------------------
// Coroutine plumbing

class SimTask {
 public:
  struct promise_type {
    TaskState* state = nullptr;

    SimTask get_return_object() {
      return SimTask{
          std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept;
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception();
  };

  using Handle = std::coroutine_handle<promise_type>;

  explicit SimTask(Handle h) : handle_(h) {}
  Handle release() {
    Handle h = handle_;
    handle_ = {};
    return h;
  }

 private:
  Handle handle_;
};

using SimTaskFn = std::function<SimTask(SimContext&)>;

// Thread levels, for spawn cost accounting in the simulator.
enum class Level : std::uint8_t { kLgt = 0, kSgt = 1, kTgt = 2 };

// ---------------------------------------------------------------------------
// Dataflow synchronization in virtual time (EARTH-style sync slot).

class SimEvent {
 public:
  // The event fires when signal() has been called `count` times.
  explicit SimEvent(SimMachine& machine, std::uint32_t count = 1)
      : machine_(&machine), remaining_(count) {}

  void signal(std::uint32_t n = 1);
  bool fired() const { return remaining_ == 0; }
  std::uint32_t remaining() const { return remaining_; }

  // Re-arms the event for reuse (EARTH reset semantics). Only valid when
  // fired and no waiters are pending.
  void reset(std::uint32_t count);

  // Awaitable: suspends the calling task until the event fires.
  struct Awaiter {
    SimEvent& ev;
    SimContext& ctx;
    bool await_ready() const noexcept { return ev.fired(); }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };
  Awaiter wait(SimContext& ctx) { return Awaiter{*this, ctx}; }

 private:
  friend class SimMachine;
  SimMachine* machine_;
  std::uint32_t remaining_;
  std::vector<TaskState*> waiters_;
};

// ---------------------------------------------------------------------------
// Task context: the interface sim tasks use to talk to the machine.

class SimContext {
 public:
  SimMachine& machine() { return *machine_; }
  std::uint32_t tu() const { return tu_; }
  std::uint32_t node() const;
  Cycle now() const;

  // --- Awaitables -------------------------------------------------------

  // TU busy for `cycles` (does not release the TU).
  struct ComputeAwaiter {
    SimContext& ctx;
    Cycle cycles;
    bool await_ready() const noexcept { return cycles == 0; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };
  ComputeAwaiter compute(Cycle cycles) { return {*this, cycles}; }

  // Split-phase memory access at the given level of the local hierarchy:
  // releases the TU for the duration.
  struct StallAwaiter {
    SimContext& ctx;
    Cycle cycles;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };
  StallAwaiter load(machine::MemLevel level);
  StallAwaiter store(machine::MemLevel level) { return load(level); }

  // Split-phase access to memory on `node` (round trip through the
  // network); releases the TU.
  StallAwaiter remote_load(std::uint32_t node, std::uint64_t bytes = 8);

  // Arbitrary modeled stall (releases the TU).
  StallAwaiter stall(Cycle cycles) { return {*this, cycles}; }

  // Cooperative yield: requeues this task at the back of the TU's ready
  // queue and charges the configured context-switch cost. This is the
  // LITL-X "context switching built into the instruction stream".
  struct YieldAwaiter {
    SimContext& ctx;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };
  YieldAwaiter yield() { return {*this}; }

  // --- Fire-and-forget operations (no co_await needed) -------------------

  // Spawns a task on `dst_tu`, charging the level's spawn cost to the
  // *caller's* TU as busy time and delaying the child's arrival by the
  // same amount. `done` (optional) is signalled when the child finishes.
  void spawn(Level level, std::uint32_t dst_tu, SimTaskFn fn,
             SimEvent* done = nullptr);

  // Sends a parcel: after the network delay for `bytes`, `fn` is enqueued
  // as a task on `dst_tu` (plus the SGT spawn cost, parcels being the SGT-
  // level mechanism in the paper).
  void send_parcel(std::uint32_t dst_tu, std::uint64_t bytes, SimTaskFn fn,
                   SimEvent* done = nullptr);

 private:
  friend class SimMachine;
  friend class SimEvent;
  friend struct TaskState;
  SimMachine* machine_ = nullptr;
  std::uint32_t tu_ = 0;
  TaskState* task_ = nullptr;
};

// ---------------------------------------------------------------------------
// Internal per-task bookkeeping.

struct TaskState {
  SimMachine* machine = nullptr;
  std::uint32_t home_tu = 0;
  SimTaskFn fn;
  SimContext ctx;
  SimTask::Handle handle{};
  SimEvent* completion = nullptr;
  bool started = false;
  bool stealable = true;
};

// ---------------------------------------------------------------------------
// The machine.

enum class StealPolicy : std::uint8_t {
  kNone = 0,        // tasks run where spawned
  kLocalNode = 1,   // idle TUs steal within their node
  kGlobal = 2,      // idle TUs steal anywhere (migration cost applies)
};

struct TuStats {
  Cycle busy_cycles = 0;
  std::uint64_t tasks_run = 0;
  std::uint64_t steals = 0;
  std::uint64_t failed_steals = 0;
};

class SimMachine {
 public:
  explicit SimMachine(machine::MachineConfig config);
  ~SimMachine();

  SimMachine(const SimMachine&) = delete;
  SimMachine& operator=(const SimMachine&) = delete;

  const machine::MachineConfig& config() const { return config_; }
  Engine& engine() { return engine_; }
  Cycle now() const { return engine_.now(); }

  void set_steal_policy(StealPolicy policy) { steal_policy_ = policy; }
  StealPolicy steal_policy() const { return steal_policy_; }

  // Bounded memory bandwidth: each node's DRAM serves at most `ports`
  // concurrent accesses; extra requesters queue. 0 (default) = unlimited
  // (every access sees the raw latency). Applies to load()/remote_load().
  void set_memory_ports(std::uint32_t ports);
  std::uint32_t memory_ports() const { return memory_ports_; }

  // Virtual-time tracing: records one complete event (lane = TU, ts/dur
  // in cycles) per contiguous occupancy of a thread unit by a task.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  // Enqueues a task on a TU, ready `delay` cycles from now. Used for
  // initial workload injection; tasks themselves use SimContext::spawn.
  void spawn_at(std::uint32_t tu, SimTaskFn fn, Cycle delay = 0,
                SimEvent* done = nullptr, bool stealable = true);

  // Runs the simulation to completion and returns the makespan.
  Cycle run() { return engine_.run(); }

  std::uint32_t num_tus() const {
    return config_.total_thread_units();
  }
  std::uint32_t node_of(std::uint32_t tu) const {
    return tu / config_.thread_units_per_node;
  }

  const TuStats& tu_stats(std::uint32_t tu) const { return tus_[tu].stats; }
  std::uint64_t total_tasks() const { return total_tasks_; }
  std::uint64_t total_steals() const;
  std::uint64_t live_tasks() const { return live_tasks_; }

  // Mean TU utilization over [0, now].
  double utilization() const;

  // Busy-cycle imbalance: max TU busy / mean TU busy (1.0 = perfect).
  double busy_imbalance() const;

 private:
  friend class SimContext;
  friend class SimEvent;
  friend struct SimTask::promise_type;

  struct Tu {
    std::deque<TaskState*> ready;
    TaskState* running = nullptr;
    bool steal_pending = false;
    Cycle occupancy_start = 0;  // dispatch time of the running task
    TuStats stats;
  };

  void trace_occupancy(std::uint32_t tu_id);

  void enqueue_ready(TaskState* task);
  void dispatch(std::uint32_t tu);
  void schedule_dispatch(std::uint32_t tu);
  void release_tu(std::uint32_t tu);  // blocking await: TU freed
  void on_task_done(TaskState* task);
  void try_steal(std::uint32_t thief);
  void poke_idle_tus(std::uint32_t except);
  TaskState* make_task(std::uint32_t tu, SimTaskFn fn, SimEvent* done,
                       bool stealable);

  // Source-side NIC injection port: serialization of concurrent sends
  // from one node queues behind each other (finite bandwidth). Returns
  // the parcel's departure delay relative to now.
  Cycle reserve_nic(std::uint32_t node, std::uint64_t bytes);

  // Memory-port reservation at `node` for an access occupying the DRAM
  // for `occupancy` cycles; returns the queueing delay before service
  // starts (0 when ports are unlimited or one is free).
  Cycle reserve_memory_port(std::uint32_t node, Cycle occupancy);

  machine::MachineConfig config_;
  Engine engine_;
  std::vector<Tu> tus_;
  std::vector<Cycle> nic_free_;  // per node: cycle the inject port frees
  std::uint32_t memory_ports_ = 0;
  std::vector<std::vector<Cycle>> mem_port_free_;  // [node][port]
  trace::Tracer* tracer_ = nullptr;
  StealPolicy steal_policy_ = StealPolicy::kNone;
  util::Xoshiro256 rng_{0xC0FFEE};
  std::uint64_t total_tasks_ = 0;
  std::uint64_t live_tasks_ = 0;
};

}  // namespace htvm::sim
