
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/testbed.cpp" "examples/CMakeFiles/testbed.dir/testbed.cpp.o" "gcc" "examples/CMakeFiles/testbed.dir/testbed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/htvm_neuro.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/htvm_md.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/htvm_litlx.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/htvm_parcel.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/htvm_runtime.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/htvm_mem.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/htvm_sync.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/htvm_machine.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/htvm_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/htvm_adapt.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/htvm_sched.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/htvm_hints.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/htvm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
