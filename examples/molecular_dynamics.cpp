// Fine-grain molecular dynamics demo (paper §5.2): a coarse protein bead
// cluster in water with Na+/Cl- ions, integrated with velocity Verlet on
// the HTVM machine. Prints the NVE energy ledger every few steps -- total
// energy should stay flat (the force field is shifted-force at the
// cutoff, so truncation does not leak energy).
//
//   ./build/examples/molecular_dynamics [waters] [steps]
#include <cstdio>
#include <cstdlib>

#include "litlx/litlx.h"
#include "md/integrate.h"

using namespace htvm;

int main(int argc, char** argv) {
  const std::uint32_t waters =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 400;
  const std::uint32_t steps =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 100;

  litlx::MachineOptions options;
  options.config.nodes = 2;
  options.config.thread_units_per_node = 2;
  litlx::Machine machine(options);

  md::MdParams params = md::MdParams::protein_in_water(waters, waters / 40);
  params.box = 12.0;
  params.cutoff = 2.2;
  params.dt = 0.001;
  md::System system(params);

  std::printf("MD demo: %zu particles in a %.1f^3 box (",
              system.size(), params.box);
  for (std::size_t s = 0; s < system.num_species(); ++s) {
    std::printf("%s%s x%u", s ? ", " : "",
                system.species(static_cast<std::uint32_t>(s)).name.c_str(),
                system.species(static_cast<std::uint32_t>(s)).count);
  }
  std::printf(")\n\n");

  md::Integrator integrator(machine, system);
  std::printf("%6s %14s %14s %14s %10s\n", "step", "kinetic", "potential",
              "total", "temp");
  double e0 = 0;
  for (std::uint32_t s = 0; s <= steps; ++s) {
    const md::StepReport r = integrator.step();
    if (s == 0) e0 = r.total_energy();
    if (s % (steps / 10 == 0 ? 1 : steps / 10) == 0) {
      std::printf("%6u %14.4f %14.4f %14.4f %10.4f\n", s,
                  r.kinetic_energy, r.potential_energy, r.total_energy(),
                  system.temperature());
    }
    if (s == steps) {
      const double drift =
          (r.total_energy() - e0) / (e0 == 0 ? 1.0 : std::abs(e0));
      std::printf("\nrelative energy drift over %u steps: %.2e\n", steps,
                  drift);
      const md::Vec3 p = system.total_momentum();
      std::printf("net momentum: (%.2e, %.2e, %.2e)\n", p.x, p.y, p.z);
    }
  }
  std::printf("force-loop monitor:\n%s",
              machine.monitor().summary().c_str());
  return 0;
}
