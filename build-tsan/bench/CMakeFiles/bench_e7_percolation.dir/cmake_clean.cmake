file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_percolation.dir/bench_e7_percolation.cc.o"
  "CMakeFiles/bench_e7_percolation.dir/bench_e7_percolation.cc.o.d"
  "bench_e7_percolation"
  "bench_e7_percolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_percolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
