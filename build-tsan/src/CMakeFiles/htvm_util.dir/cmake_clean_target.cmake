file(REMOVE_RECURSE
  "libhtvm_util.a"
)
