file(REMOVE_RECURSE
  "CMakeFiles/test_litlx.dir/litlx_test.cc.o"
  "CMakeFiles/test_litlx.dir/litlx_test.cc.o.d"
  "test_litlx"
  "test_litlx.pdb"
  "test_litlx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_litlx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
