// Force evaluation: cell list + LJ/Coulomb pair forces.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "md/system.h"

namespace htvm::md {

// Uniform-grid cell list over the periodic box. Cell side >= cutoff so a
// particle only interacts within its 27-cell neighbourhood.
class CellList {
 public:
  CellList(const System& system, double cutoff);

  void rebuild(const System& system);

  std::uint32_t cells_per_side() const { return side_; }
  std::uint32_t num_cells() const { return side_ * side_ * side_; }
  std::uint32_t cell_of(const Vec3& p) const;

  // Particles in a cell (CSR layout, rebuilt per call to rebuild()).
  const std::uint32_t* cell_begin() const { return begin_.data(); }
  const std::uint32_t* cell_particles() const { return particles_.data(); }
  std::uint32_t cell_size(std::uint32_t cell) const {
    return begin_[cell + 1] - begin_[cell];
  }

  // The 27 neighbour cells of `cell` (with periodic wrap), including
  // itself; deterministic order.
  std::array<std::uint32_t, 27> neighbors(std::uint32_t cell) const;

 private:
  double box_ = 1.0;
  std::uint32_t side_ = 1;
  std::vector<std::uint32_t> begin_;
  std::vector<std::uint32_t> particles_;
};

struct ForceStats {
  double potential_energy = 0.0;
  std::uint64_t pairs_evaluated = 0;   // within-cutoff pair evaluations
  std::uint64_t pairs_considered = 0;  // candidate pairs inspected
};

// Computes forces and potential for particle `i` by scanning its 27
// neighbour cells; writes only force[i]. Each pair is therefore computed
// twice across the whole system (race-free, deterministic), and the
// returned potential is the *half* share attributable to `i`.
ForceStats compute_particle_force(System& system, const CellList& cells,
                                  std::uint32_t i);

// Serial full-system force pass (zeroes forces first). Returns aggregate
// stats with the total potential energy.
ForceStats compute_all_forces(System& system, const CellList& cells);

// O(n^2) reference used to validate the cell list.
ForceStats compute_all_forces_reference(System& system);

// Verlet neighbour list: per particle, the partners within cutoff + skin.
// Valid until some particle has moved more than skin/2 since the build
// (then a pair could cross the cutoff unseen); needs_rebuild() tracks
// displacements. Between rebuilds force passes skip the 27-cell scan,
// trading memory for the usual ~2-4x candidate-pair reduction.
class NeighborList {
 public:
  NeighborList(const System& system, double cutoff, double skin);

  void rebuild(const System& system);
  bool needs_rebuild(const System& system) const;

  std::uint32_t count(std::uint32_t i) const {
    return begin_[i + 1] - begin_[i];
  }
  const std::uint32_t* neighbors_of(std::uint32_t i) const {
    return partners_.data() + begin_[i];
  }
  std::uint64_t total_pairs() const { return partners_.size(); }
  std::uint64_t rebuilds() const { return rebuilds_; }
  double skin() const { return skin_; }

 private:
  double cutoff_;
  double skin_;
  std::vector<std::uint32_t> begin_;
  std::vector<std::uint32_t> partners_;
  std::vector<Vec3> positions_at_build_;
  std::uint64_t rebuilds_ = 0;
};

// Force on particle `i` from its Verlet neighbours (same arithmetic as
// the cell-list path; partners beyond the cutoff contribute nothing).
ForceStats compute_particle_force_verlet(System& system,
                                         const NeighborList& list,
                                         std::uint32_t i);

}  // namespace htvm::md
