#include "sched/schedulers.h"

#include <algorithm>
#include <cmath>

namespace htvm::sched {

// ------------------------------------------------------------- StaticBlock

void StaticBlock::reset(std::int64_t total, std::uint32_t workers) {
  total_ = total;
  workers_ = workers;
  taken_ = std::vector<std::atomic<bool>>(workers);
}

std::optional<Chunk> StaticBlock::next(std::uint32_t worker) {
  if (worker >= workers_) return std::nullopt;
  if (taken_[worker].exchange(true, std::memory_order_acq_rel))
    return std::nullopt;
  const std::int64_t per = total_ / workers_;
  const std::int64_t extra = total_ % workers_;
  // First `extra` workers get one extra iteration.
  const std::int64_t begin =
      static_cast<std::int64_t>(worker) * per +
      std::min<std::int64_t>(worker, extra);
  const std::int64_t size = per + (worker < extra ? 1 : 0);
  if (size == 0) return std::nullopt;
  return Chunk{begin, begin + size};
}

// ------------------------------------------------------------ StaticCyclic

void StaticCyclic::reset(std::int64_t total, std::uint32_t workers) {
  total_ = total;
  workers_ = workers;
  next_index_ = std::vector<std::atomic<std::int64_t>>(workers);
  for (auto& n : next_index_) n.store(0, std::memory_order_relaxed);
}

std::optional<Chunk> StaticCyclic::next(std::uint32_t worker) {
  if (worker >= workers_) return std::nullopt;
  const std::int64_t k =
      next_index_[worker].fetch_add(1, std::memory_order_acq_rel);
  const std::int64_t begin =
      (static_cast<std::int64_t>(worker) + k * workers_) * chunk_;
  if (begin >= total_) return std::nullopt;
  return Chunk{begin, std::min(begin + chunk_, total_)};
}

// ----------------------------------------------------------- SelfScheduling

void SelfScheduling::reset(std::int64_t total, std::uint32_t workers) {
  (void)workers;
  total_ = total;
  cursor_.store(0, std::memory_order_relaxed);
}

std::optional<Chunk> SelfScheduling::next(std::uint32_t) {
  const std::int64_t begin =
      cursor_.fetch_add(chunk_, std::memory_order_acq_rel);
  if (begin >= total_) return std::nullopt;
  return Chunk{begin, std::min(begin + chunk_, total_)};
}

// ----------------------------------------------------- GuidedSelfScheduling

void GuidedSelfScheduling::reset(std::int64_t total, std::uint32_t workers) {
  total_ = total;
  workers_ = workers;
  cursor_ = 0;
}

std::optional<Chunk> GuidedSelfScheduling::next(std::uint32_t) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (cursor_ >= total_) return std::nullopt;
  const std::int64_t remaining = total_ - cursor_;
  const auto divisor = std::max(1.0, k_ * static_cast<double>(workers_));
  std::int64_t size = static_cast<std::int64_t>(
      std::ceil(static_cast<double>(remaining) / divisor));
  size = std::max(size, min_chunk_);
  size = std::min(size, remaining);
  const Chunk c{cursor_, cursor_ + size};
  cursor_ += size;
  return c;
}

// ---------------------------------------------------------------- Factoring

void Factoring::reset(std::int64_t total, std::uint32_t workers) {
  total_ = total;
  workers_ = workers;
  cursor_ = 0;
  batch_chunk_ = 0;
  batch_left_ = 0;
}

std::optional<Chunk> Factoring::next(std::uint32_t) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (cursor_ >= total_) return std::nullopt;
  if (batch_left_ == 0) {
    // New batch: half the remaining work, split evenly over the workers.
    const std::int64_t remaining = total_ - cursor_;
    batch_chunk_ = std::max<std::int64_t>(
        1, remaining / (2 * static_cast<std::int64_t>(workers_)));
    batch_left_ = workers_;
  }
  const std::int64_t size = std::min(batch_chunk_, total_ - cursor_);
  const Chunk c{cursor_, cursor_ + size};
  cursor_ += size;
  --batch_left_;
  return c;
}

// ------------------------------------------------- TrapezoidSelfScheduling

void TrapezoidSelfScheduling::reset(std::int64_t total,
                                    std::uint32_t workers) {
  total_ = total;
  cursor_ = 0;
  const double first =
      first_ > 0 ? static_cast<double>(first_)
                 : std::max(1.0, static_cast<double>(total) /
                                     (2.0 * static_cast<double>(workers)));
  const double last = std::max<double>(1.0, static_cast<double>(last_));
  // Number of chunks N satisfies total = N * (first + last) / 2.
  const double n = std::max(
      1.0, std::ceil(2.0 * static_cast<double>(total) / (first + last)));
  current_ = first;
  decrement_ = n > 1 ? (first - last) / (n - 1) : 0.0;
}

std::optional<Chunk> TrapezoidSelfScheduling::next(std::uint32_t) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (cursor_ >= total_) return std::nullopt;
  std::int64_t size = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::llround(current_)));
  size = std::min(size, total_ - cursor_);
  const Chunk c{cursor_, cursor_ + size};
  cursor_ += size;
  current_ = std::max(1.0, current_ - decrement_);
  return c;
}

// -------------------------------------------------------- AffinityScheduling

void AffinityScheduling::reset(std::int64_t total, std::uint32_t workers) {
  workers_ = workers;
  locals_.clear();
  const std::int64_t per = total / workers;
  const std::int64_t extra = total % workers;
  std::int64_t begin = 0;
  for (std::uint32_t w = 0; w < workers; ++w) {
    auto local = std::make_unique<Local>();
    const std::int64_t size = per + (w < extra ? 1 : 0);
    local->begin = begin;
    local->end = begin + size;
    begin += size;
    locals_.push_back(std::move(local));
  }
}

std::optional<Chunk> AffinityScheduling::next(std::uint32_t worker) {
  if (worker >= workers_) return std::nullopt;
  // Consume 1/divisor of the local remainder.
  {
    Local& mine = *locals_[worker];
    std::lock_guard<std::mutex> lock(mine.mutex);
    const std::int64_t remaining = mine.end - mine.begin;
    if (remaining > 0) {
      const std::int64_t size = std::max<std::int64_t>(
          1, remaining / std::max<std::int64_t>(1, divisor_));
      const Chunk c{mine.begin, mine.begin + size};
      mine.begin += size;
      return c;
    }
  }
  // Steal from the most loaded worker.
  while (true) {
    std::uint32_t victim = workers_;
    std::int64_t best = 0;
    for (std::uint32_t w = 0; w < workers_; ++w) {
      if (w == worker) continue;
      Local& other = *locals_[w];
      std::lock_guard<std::mutex> lock(other.mutex);
      const std::int64_t remaining = other.end - other.begin;
      if (remaining > best) {
        best = remaining;
        victim = w;
      }
    }
    if (victim == workers_) return std::nullopt;
    Local& loser = *locals_[victim];
    std::lock_guard<std::mutex> lock(loser.mutex);
    const std::int64_t remaining = loser.end - loser.begin;
    if (remaining <= 0) continue;  // raced; rescan
    const std::int64_t size = std::max<std::int64_t>(
        1, remaining / std::max<std::int64_t>(1, divisor_));
    const Chunk c{loser.begin, loser.begin + size};
    loser.begin += size;
    return c;
  }
}

// --------------------------------------------------------- AdaptiveChunking

void AdaptiveChunking::reset(std::int64_t total, std::uint32_t workers) {
  (void)workers;
  total_ = total;
  cursor_.store(0, std::memory_order_relaxed);
  chunk_.store(initial_chunk_, std::memory_order_relaxed);
}

std::optional<Chunk> AdaptiveChunking::next(std::uint32_t) {
  const std::int64_t size = chunk_.load(std::memory_order_relaxed);
  const std::int64_t begin =
      cursor_.fetch_add(size, std::memory_order_acq_rel);
  if (begin >= total_) return std::nullopt;
  return Chunk{begin, std::min(begin + size, total_)};
}

void AdaptiveChunking::report(std::uint32_t, const Chunk& chunk,
                              double seconds) {
  if (seconds <= 0 || chunk.size() <= 0) return;
  const double per_iter = seconds / static_cast<double>(chunk.size());
  if (per_iter <= 0) return;
  auto ideal =
      static_cast<std::int64_t>(std::llround(target_seconds_ / per_iter));
  ideal = std::clamp<std::int64_t>(ideal, 1, std::max<std::int64_t>(
                                               1, total_ / 4));
  // Geometric smoothing toward the ideal to damp noisy reports.
  std::int64_t cur = chunk_.load(std::memory_order_relaxed);
  const std::int64_t blended = (cur * 3 + ideal) / 4;
  chunk_.store(std::max<std::int64_t>(1, blended),
               std::memory_order_relaxed);
}

// ------------------------------------------------------------------ factory

std::unique_ptr<LoopScheduler> make_scheduler(const std::string& name,
                                              std::int64_t chunk) {
  if (name == "static_block") return std::make_unique<StaticBlock>();
  if (name == "static_cyclic")
    return std::make_unique<StaticCyclic>(chunk > 0 ? chunk : 4);
  if (name == "self_sched")
    return std::make_unique<SelfScheduling>(chunk > 0 ? chunk : 4);
  if (name == "guided")
    return std::make_unique<GuidedSelfScheduling>(1.0,
                                                  chunk > 0 ? chunk : 1);
  if (name == "factoring") return std::make_unique<Factoring>();
  if (name == "trapezoid") return std::make_unique<TrapezoidSelfScheduling>();
  if (name == "affinity") return std::make_unique<AffinityScheduling>();
  if (name == "adaptive")
    return std::make_unique<AdaptiveChunking>(1e-3,
                                              chunk > 0 ? chunk : 16);
  return nullptr;
}

std::vector<std::string> scheduler_names() {
  return {"static_block", "static_cyclic", "self_sched", "guided",
          "factoring",    "trapezoid",     "affinity",   "adaptive"};
}

}  // namespace htvm::sched
