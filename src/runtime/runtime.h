// The HTVM runtime: real-thread execution of the three-level thread
// hierarchy (paper §3.1.1).
//
//   LGT  -- large-grain thread: a stackful fiber bound to a node, with
//           application-level context switching (yield / await). Costly to
//           spawn; owns a private heap; shares the global address space.
//   SGT  -- small-grain thread: a run-to-completion task with its own frame,
//           scheduled on per-worker Chase-Lev deques with work stealing
//           (within the node first, then across nodes = task migration).
//   TGT  -- tiny-grain thread: a strand inside the current SGT, sharing its
//           frame; enabled immediately or by an EARTH-style SyncSlot; runs
//           on the worker where it was enabled, never stolen.
//
// Workers are OS threads grouped into nodes per the MachineConfig. An
// optional LatencyInjector makes remote operations on this backend cost
// what the modeled machine would charge.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "machine/latency.h"
#include "machine/topology.h"
#include "mem/frame.h"
#include "mem/global_memory.h"
#include "mem/pool_stats.h"
#include "obs/latency.h"
#include "obs/registry.h"
#include "runtime/deque.h"
#include "runtime/fiber.h"
#include "runtime/task.h"
#include "runtime/task_pool.h"
#include "sync/future.h"
#include "sync/sync_slot.h"
#include "trace/tracer.h"
#include "util/rng.h"
#include "util/spinlock.h"

namespace htvm::rt {

enum class StealScope : std::uint8_t {
  kNone = 0,    // no stealing: tasks run where spawned
  kNode = 1,    // steal within the spawning node only
  kGlobal = 2,  // steal anywhere; cross-node steals pay migration latency
};

// How a task reached the worker that dispatches it. Splits the
// rt.lat.queue_wait distribution: a local pop is the deque fast path, a
// steal adds victim-scan plus migration latency, an inject drain adds
// the socket queue's batching delay.
enum class TaskSource : std::uint8_t { kLocal = 0, kSteal, kInject };

// What a worker is doing right now (live inspector) and where its
// nanoseconds went (rt.state.* counters, shard = worker id).
enum class WorkerState : std::uint8_t { kBusy = 0, kSteal, kPark };
const char* to_string(WorkerState state);

struct RuntimeOptions {
  machine::MachineConfig config;
  double cycle_ns = 0.0;  // 0: functional mode (no latency injection)
  StealScope steal_scope = StealScope::kGlobal;
  std::size_t fiber_stack_bytes = Fiber::kDefaultStackBytes;
  // Failed acquire rounds before a worker parks on the idle lock.
  std::uint32_t park_threshold = 16;
  // Workers default to one per modeled thread unit; cap for small hosts
  // (at least one worker per node is always kept).
  std::uint32_t max_workers = 0;  // 0 = no cap
  // Topology-aware stealing (machine::TopologyTree): victims are scanned
  // in ascending steal-distance order (SMT sibling, same socket, same
  // node, remote) from a per-worker precomputed list, and a successful
  // round takes up to half the victim's backlog. false = the flat
  // ablation: cyclic same-node-first victim order, one task per steal —
  // the pre-topology behaviour, kept for A/B benches.
  bool topology_aware = true;
  // Cap on tasks taken per steal round (>=1; 1 disables batching).
  std::uint32_t steal_batch_max = 16;
};

// Legacy-shaped view of the worker counters. The counters themselves now
// live in the runtime's obs::MetricsRegistry ("rt.*" sharded counters,
// shard = worker id); this struct is materialized from registry shards so
// existing callers keep working while telemetry_snapshot() exposes the
// same numbers to every other consumer.
struct WorkerStats {
  std::uint64_t sgts_executed = 0;
  std::uint64_t tgts_executed = 0;
  std::uint64_t lgt_resumes = 0;
  std::uint64_t steals = 0;
  std::uint64_t failed_steal_rounds = 0;
  std::uint64_t parks = 0;
};

struct Lgt;

// Wake-callback indirection for blocked LGTs. Future::on_ready consumers
// capture a shared_ptr to the gate instead of a raw Lgt*: the gate outlives
// the LGT, ~Lgt nulls the back-pointer under the gate lock, and a per-block
// epoch lets stale consumers (from an earlier blocking episode) be ignored.
// Without this, a consumer registered on a future that outlives the LGT
// would fire into freed memory, and a leftover consumer from a previous
// await could double-re-enqueue the fiber.
struct LgtWakeGate {
  util::SpinLock lock;
  Lgt* lgt = nullptr;  // nulled by ~Lgt
};

// An LGT instance. Created by Runtime::spawn_lgt; owned by the runtime's
// queues/registries throughout its life.
struct Lgt {
  Lgt(std::function<void()> entry, std::size_t stack_bytes)
      : fiber(std::move(entry), stack_bytes),
        gate(std::make_shared<LgtWakeGate>()) {
    gate->lgt = this;
  }
  ~Lgt() {
    util::Guard<util::SpinLock> g(gate->lock);
    gate->lgt = nullptr;
  }
  Fiber fiber;
  std::uint32_t node = 0;
  class Runtime* runtime = nullptr;
  // Two-phase wakeup: both the blocking worker and the wake callback
  // "check in"; whichever is second re-enqueues the fiber (lgt_checkin).
  std::atomic<int> checkins{0};
  // Incremented once per blocking episode; a wake consumer carrying an
  // older epoch is stale and must not check in.
  std::atomic<std::uint64_t> wake_epoch{0};
  std::shared_ptr<LgtWakeGate> gate;
  enum class Exit : std::uint8_t { kYielded, kBlocked };
  Exit exit_reason = Exit::kYielded;
};

class Runtime {
 public:
  explicit Runtime(RuntimeOptions options);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // ------------------------------------------------------------- spawning

  // Spawns a large-grain thread on `node`. The entry runs in a fiber and
  // may call Runtime::yield() and Runtime::await().
  void spawn_lgt(std::uint32_t node, std::function<void()> entry);

  // Spawns a small-grain thread on the current node (node 0 from external
  // threads). The callable is moved into a pooled, inline-storage Task
  // slot: captures that fit Task::kInlineBytes never touch the heap, and
  // the slot itself is recycled through per-worker free lists, so the
  // steady-state spawn path is allocation-free.
  template <typename F>
  void spawn_sgt(F&& fn) {
    spawn_sgt_on(current_node(), std::forward<F>(fn));
  }

  template <typename F>
  void spawn_sgt_on(std::uint32_t node, F&& fn) {
    injector_.spawn_cost(1);
    task_started();
    Task* slot = task_pool_->allocate(worker_hint());
    slot->emplace(std::forward<F>(fn));
    // Unconditional store: recycled slots carry the previous tenant's
    // stamp, and a stale stamp would fabricate a huge queue-wait. The
    // stamp is a published-clock load when other work is in flight
    // (task_started() above counted this task, hence > 1), a real
    // clock read only on the idle-to-active transition.
    slot->stamp_ns = obs::spawn_stamp(
        outstanding_.load(std::memory_order_relaxed) > 1);
    enqueue_sgt(node, slot);
    work_arrived();
  }

  // Batched SGT spawn: moves every Task in `tasks` onto `node`, taking
  // the node inject lock once for the whole batch (or, from a worker on
  // `node`, pushing straight into its own deque) and waking workers once.
  // The caller builds the Tasks in place (e.g. a stack array) and they
  // are left empty on return.
  void spawn_sgt_batch(std::uint32_t node, std::span<Task> tasks);

  // Spawns a tiny-grain thread: runs on this worker, after the current
  // task, sharing the enclosing SGT's frame (by capture). From an external
  // thread this degrades to an SGT on node 0. TGTs live by value in the
  // worker's strand stack (inline storage, no allocation).
  template <typename F>
  void spawn_tgt(F&& fn) {
    const std::int32_t wid = worker_hint();
    if (wid < 0) {
      // External context: degrade gracefully to an SGT on node 0.
      spawn_sgt_on(0, std::forward<F>(fn));
      return;
    }
    injector_.spawn_cost(2);
    task_started();
    workers_[static_cast<std::size_t>(wid)]->tgt_stack.emplace_back(
        std::forward<F>(fn));
  }

  // Arms `slot` with `count` so that when it fires the TGT is enabled on
  // the worker that delivered the final signal.
  void spawn_tgt_after(sync::SyncSlot& slot, std::uint32_t count,
                       std::function<void()> fn);

  // --------------------------------------------------------- fiber context

  // Voluntary context switch (valid inside an LGT fiber).
  static void yield();

  // Blocks the current LGT on a future without blocking its worker: the
  // fiber switches out and is re-enqueued when the value arrives. From a
  // non-fiber context on a worker thread (inside an SGT or TGT) the
  // worker *helps*: it keeps running scheduler work until the future is
  // ready, so the producer queued behind the awaiting task still runs --
  // a blocking get here would park the worker and deadlock a 1-worker
  // runtime (the PR-6 await regression). Only a genuinely external
  // thread falls back to the blocking get.
  //
  // Exactly one wake consumer is registered per blocking episode, and the
  // consumer goes through the LGT's wake gate with the episode's epoch:
  // a consumer that fires late (after the LGT resumed, moved on to another
  // await, or finished entirely) is recognized as stale and ignored
  // instead of dereferencing a dead LGT or double-re-enqueueing it.
  template <typename T>
  static const T& await(const sync::Future<T>& future) {
    Lgt* lgt = current_lgt();
    if (lgt == nullptr) {
      Runtime* rt = current();
      if (rt != nullptr && current_worker() >= 0) {
        rt->help_while_not([&future] { return future.ready(); });
        return future.get();  // ready: returns without blocking
      }
      return future.get();
    }
    while (!future.ready()) {
      const std::uint64_t epoch =
          lgt->wake_epoch.fetch_add(1, std::memory_order_acq_rel) + 1;
      lgt->checkins.store(0, std::memory_order_relaxed);
      future.on_ready([gate = lgt->gate, epoch](const T&) {
        gated_lgt_checkin(*gate, epoch);
      });
      lgt->runtime->block_current_lgt(lgt);
    }
    return future.get();
  }

  // ------------------------------------------------------------- lifecycle

  // Blocks until every spawned thread (all three levels) has completed.
  void wait_idle();

  // --------------------------------------------------------- introspection

  static Runtime* current();             // runtime owning this worker thread
  static Lgt* current_lgt();             // LGT fiber running here, if any
  static std::int32_t current_worker();  // worker id, -1 if external
  std::uint32_t current_node() const;    // node of this worker (0 external)

  std::uint32_t num_workers() const {
    return static_cast<std::uint32_t>(workers_.size());
  }
  std::uint32_t num_nodes() const { return options_.config.nodes; }
  std::uint32_t node_of_worker(std::uint32_t worker) const {
    return workers_[worker]->node;
  }

  // The execution-unit topology the steal path is built around (shape from
  // the config / HTVM_TOPOLOGY, placement over the post-cap worker layout).
  const machine::TopologyTree& topology() const { return topology_; }
  // The precomputed steal order worker `worker` actually uses, and the
  // length of its same-node prefix (what a node-scoped round scans).
  // Introspection for tests and benches.
  std::span<const std::uint32_t> victim_list(std::uint32_t worker) const {
    return workers_[worker]->victims;
  }
  std::size_t victim_local_prefix(std::uint32_t worker) const {
    return workers_[worker]->local_prefix;
  }

  mem::GlobalMemory& memory() { return *memory_; }
  mem::FrameAllocator& frames(std::uint32_t node) {
    return *frame_allocators_[node];
  }
  const machine::LatencyInjector& injector() const { return injector_; }
  const RuntimeOptions& options() const { return options_; }

  WorkerStats worker_stats(std::uint32_t worker) const;
  WorkerStats aggregate_stats() const;
  std::uint64_t outstanding() const {
    return outstanding_.load(std::memory_order_acquire);
  }
  // Task-slot pool counters (allocations / recycle hits / live): after
  // warmup the spawn path should be ~all recycle hits.
  mem::PoolStatsSnapshot task_pool_stats() const {
    return task_pool_->stats();
  }

  // The unified metrics registry. The runtime owns it and registers its
  // own "rt.*" worker counters and "pool.*" gauges; other components
  // (parcel engine, load balancer, perf monitor) register theirs here so
  // one telemetry_snapshot() covers the whole system.
  obs::MetricsRegistry& metrics() { return *metrics_; }
  const obs::MetricsRegistry& metrics() const { return *metrics_; }
  obs::TelemetrySnapshot telemetry_snapshot() const {
    return metrics_->snapshot();
  }
  // Writes the HTVM_METRICS dump (if requested) exactly once. Callers
  // that tear down registered sources before the runtime dies (Machine)
  // invoke this first; the destructor is the fallback.
  void dump_metrics();

  // ------------------------------------------------------- live inspector

  // One-screen human-readable status table: per-worker state, deque
  // depth, executed/steal/park counters and state-time split, followed
  // by the rt.lat.* percentiles and the steal distance mix. Safe to call
  // from any thread while workers run (reads are relaxed snapshots).
  void dump_status(std::ostream& out) const;
  // The same information as one line of htvm.status.v1 JSON — what the
  // HTVM_STATUS_PERIOD_MS periodic dump emits and tools/htvm_top.py
  // tails.
  std::string status_json() const;

  // ------------------------------------------------------------- extension

  // Per-node pollers (the parcel engine registers its inbox drain here).
  // A poller returns true if it performed work. Register before spawning
  // work; pollers run on every worker scheduling round.
  using Poller = std::function<bool(std::uint32_t node)>;
  using PollerId = std::uint64_t;
  PollerId add_poller(Poller poller);
  // Components registering pollers must remove them before dying; workers
  // stop calling the poller once this returns.
  void remove_poller(PollerId id);

  // Execution tracing: when a tracer is attached and enabled, workers
  // record SGT executions, LGT resume spans, and successful steals as
  // complete events (host microseconds since runtime start, lane =
  // worker id). Attach before spawning work; detach only when idle.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }
  trace::Tracer* tracer() const { return tracer_; }
  std::uint64_t trace_now_us() const;

  // Work tokens: keep wait_idle() from returning while an external
  // component (e.g. an in-flight parcel) still owes the runtime work.
  void hold_work() { task_started(); }
  void release_work() { task_finished(); }
  // Wakes parked workers so they notice poller work that arrived outside
  // the spawn APIs.
  void notify_work() { work_arrived(); }

  // Help-first blocking for non-fiber contexts: runs scheduler work on the
  // calling worker until `ready()` returns true. Must be called from a
  // worker thread of this runtime (await()'s SGT/TGT fallback). TGTs
  // enabled by the helped work run as usual when the interrupted task's
  // own drain resumes.
  void help_while_not(const std::function<bool()>& ready);

  // LGT wakeup protocol (public for Future callbacks) and load balancing.
  void lgt_checkin(Lgt* lgt);
  // Gate-guarded check-in used by await()'s wake consumers: no-ops if the
  // LGT is gone or the consumer's blocking episode has passed.
  static void gated_lgt_checkin(LgtWakeGate& gate, std::uint64_t epoch);
  std::size_t lgt_queue_depth(std::uint32_t node) const;
  std::size_t sgt_backlog(std::uint32_t node) const;
  // Moves one ready LGT from `from` to `to` (dynamic load adaptation at
  // LGT level). Returns false if none was ready. Pays migration latency.
  bool migrate_one_lgt(std::uint32_t from, std::uint32_t to);

 private:
  struct NodeState {
    mutable std::mutex lgt_mutex;
    std::deque<std::unique_ptr<Lgt>> lgt_ready;  // parked ready fibers
    // Global socket ids living on this node, and a round-robin cursor
    // spreading external SGT injections over them.
    std::vector<std::uint32_t> sockets;
    std::atomic<std::uint32_t> inject_cursor{0};
  };

  // External / cross-node SGT arrivals, one queue per socket (was one per
  // node: with many workers per node the single inject mutex was the
  // hottest lock in the inject path). A two-list swap queue: producers
  // append under the lock; a consuming worker on the socket swaps the
  // whole vector with its private scratch and drains it lock-free.
  // `inject_size` is a hint so idle workers skip the lock when empty.
  struct SocketState {
    std::uint32_t node = 0;
    mutable std::mutex inject_mutex;
    std::vector<Task*> inject;
    std::atomic<std::size_t> inject_size{0};
  };

  struct Worker {
    std::uint32_t id = 0;
    std::uint32_t node = 0;
    std::uint32_t socket = 0;  // global socket id (TopologyTree::place)
    Runtime* runtime = nullptr;
    WsDeque<Task*> deque;
    std::vector<Task> tgt_stack;
    std::vector<Task*> inject_scratch;  // swap target for the inject queue
    // Precomputed steal order: every other worker once, nearest distance
    // class first (flat cyclic order in the ablation), with the distance
    // of each victim alongside so the hot path never recomputes it.
    // `local_prefix` bounds the same-node portion: a node-scoped round
    // scans victims[0, local_prefix) and never walks the full list.
    std::vector<std::uint32_t> victims;
    std::vector<machine::StealDistance> victim_distance;
    std::size_t local_prefix = 0;
    std::vector<Task*> steal_buf;  // steal_batch landing area
    util::Xoshiro256 rng{1};
    // Live-inspector state flag; written by the owning worker with
    // relaxed stores, read by dump_status from any thread.
    std::atomic<WorkerState> state{WorkerState::kSteal};
    std::thread thread;
  };

  // Registry-backed worker counters: each is a sharded obs::Counter whose
  // shard index is the worker id, so worker_main's bumps stay one relaxed
  // fetch_add on a worker-private cache line.
  struct WorkerCounters {
    obs::Counter* sgts_executed = nullptr;
    obs::Counter* tgts_executed = nullptr;
    obs::Counter* lgt_resumes = nullptr;
    obs::Counter* steals = nullptr;
    obs::Counter* failed_steal_rounds = nullptr;
    obs::Counter* parks = nullptr;
    // Successful steal rounds bucketed by victim distance (rt.steal.*),
    // plus the total tasks moved by batching and the rounds that hit a
    // remote socket's inject queue rather than a deque.
    obs::Counter* steal_smt = nullptr;
    obs::Counter* steal_core = nullptr;
    obs::Counter* steal_socket = nullptr;
    obs::Counter* steal_remote = nullptr;
    obs::Counter* steal_batch_tasks = nullptr;
    obs::Counter* steal_inject = nullptr;
    // State-time accounting (rt.state.*): where each worker's wall
    // nanoseconds went. busy = running work, steal = hunting (failed
    // rounds + spin backoff), park = blocked on the idle CV. Only
    // advanced while obs::latency_enabled().
    obs::Counter* busy_ns = nullptr;
    obs::Counter* steal_ns = nullptr;
    obs::Counter* park_ns = nullptr;
  };

  // rt.lat.* histograms (registry-owned, shard = worker id). Recording
  // is gated on obs::latency_enabled(); with HTVM_LATENCY=off the spawn
  // and dispatch paths never read the clock.
  struct LatencyMetrics {
    obs::Histogram* queue_wait = nullptr;         // all sources
    obs::Histogram* queue_wait_local = nullptr;   // own-deque pop
    obs::Histogram* queue_wait_steal = nullptr;   // arrived via steal
    obs::Histogram* queue_wait_inject = nullptr;  // socket inject drain
    obs::Histogram* run = nullptr;                // dispatch -> complete
    obs::Histogram* steal_round = nullptr;  // failed-round backoff time
  };

  // Worker id of the calling thread if it belongs to THIS runtime, else -1
  // (external threads, and workers of other runtimes).
  std::int32_t worker_hint() const;
  // Routes a pooled task to `node`: own-deque push when the caller is a
  // worker on that node, otherwise one of the node's per-socket inject
  // queues (round-robin, so bursts spread over the sockets).
  void enqueue_sgt(std::uint32_t node, Task* task);
  // The inject queue an external enqueue to `node` should use next.
  SocketState& next_inject_socket(std::uint32_t node);

  // Shared accounting for every successful steal round, whatever the
  // source (victim deque or a remote inject queue): migration latency for
  // cross-node moves, the rt.steals and rt.steal.<distance> counters, the
  // batch-size counter, and one trace event carrying the task count.
  void record_steal(Worker& w, std::uint32_t victim_node,
                    machine::StealDistance distance, std::size_t tasks);
  obs::Counter* distance_counter(machine::StealDistance distance);

  void worker_main(Worker& worker);
  bool try_run_one(Worker& worker);
  bool try_steal(Worker& worker);
  bool drain_inject(Worker& worker);
  bool run_pollers(std::uint32_t node);
  void run_sgt(Worker& worker, Task* task,
               TaskSource source = TaskSource::kLocal);
  // Turns `task`'s spawn stamp into a queue-wait observation (total +
  // per-source split) at dispatch time; returns `now` so run_sgt reuses
  // one clock read for the run-time measurement.
  std::uint64_t observe_dispatch(Worker& worker, Task* task,
                                 TaskSource source);
  // HTVM_STATUS_PERIOD_MS / SIGUSR1 periodic status emitter.
  void start_status_thread();
  void stop_status_thread();
  void emit_status_line();
  void drain_tgts(Worker& worker);
  void resume_lgt(Worker& worker, std::unique_ptr<Lgt> lgt);
  void block_current_lgt(Lgt* lgt);
  void enqueue_lgt(std::unique_ptr<Lgt> lgt);
  std::unique_ptr<Lgt> take_blocked(Lgt* lgt);

  void work_arrived();
  void task_started() {
    outstanding_.fetch_add(1, std::memory_order_acq_rel);
  }
  void task_finished();

  RuntimeOptions options_;
  machine::LatencyInjector injector_;
  trace::Tracer* tracer_ = nullptr;
  // HTVM_TRACE=<path>: the runtime owns a tracer and writes the Chrome
  // JSON at shutdown. nullptr unless the env var was set at construction.
  std::unique_ptr<trace::Tracer> env_tracer_;
  std::string env_trace_path_;
  std::string env_metrics_path_;  // HTVM_METRICS=<path>
  bool metrics_dumped_ = false;
  std::chrono::steady_clock::time_point start_time_{
      std::chrono::steady_clock::now()};
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  WorkerCounters counters_;
  LatencyMetrics lat_;
  std::vector<obs::MetricsRegistry::SourceId> gauge_sources_;
  // Periodic status dump (HTVM_STATUS_PERIOD_MS= / SIGUSR1): a small
  // thread appending htvm.status.v1 JSON lines to HTVM_STATUS_PATH
  // (default stderr). Null when neither env var requested it.
  std::thread status_thread_;
  std::atomic<bool> status_stop_{false};
  std::chrono::milliseconds status_period_{0};
  std::string status_path_;
  std::unique_ptr<mem::GlobalMemory> memory_;
  std::vector<std::unique_ptr<mem::FrameAllocator>> frame_allocators_;
  std::unique_ptr<TaskPool> task_pool_;
  machine::TopologyTree topology_;
  std::uint32_t steal_batch_max_ = 1;  // effective cap (1 in flat mode)
  std::vector<std::unique_ptr<NodeState>> nodes_;
  std::vector<std::unique_ptr<SocketState>> sockets_;  // by global socket id
  std::vector<std::unique_ptr<Worker>> workers_;
  mutable std::shared_mutex poller_mutex_;
  std::vector<std::pair<PollerId, Poller>> pollers_;
  PollerId next_poller_id_ = 1;

  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> outstanding_{0};
  std::atomic<std::uint64_t> work_epoch_{0};
  std::mutex park_mutex_;
  std::condition_variable park_cv_;
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;

  // Blocked LGTs are owned here until their wakeup re-enqueues them.
  std::mutex blocked_mutex_;
  std::vector<std::unique_ptr<Lgt>> blocked_lgts_;
};

}  // namespace htvm::rt
