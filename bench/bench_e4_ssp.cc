// E4 -- SSP vs innermost modulo scheduling (paper §3.3 / Rong et al.
// CGO'04): pipelining the most profitable loop level beats classic
// innermost software pipelining when inner loops carry recurrences or
// have short trip counts.
//
// For each nest in the canonical suite: the innermost plan, every forced
// level (the ablation from DESIGN.md §7), and the model-selected level,
// with both analytically predicted and cycle-simulated totals.
#include "common.h"
#include "ssp/simulate.h"

using namespace htvm;

int main(int argc, char** argv) {
  bench::print_header(
      "E4: single-dimension software pipelining vs innermost MS",
      "SSP at the model-selected level >= innermost pipelining; big wins "
      "on inner-carried recurrences and short inner trips");
  bench::Reporter reporter(argc, argv, "e4_ssp");

  const auto model = ssp::ResourceModel::itanium_like();
  const std::vector<ssp::LoopNest> suite = {
      ssp::make_matmul_nest(32, 32, 32),
      ssp::make_stencil_nest(64, 64),
      ssp::make_recurrence_nest(64, 64),
      ssp::make_short_inner_nest(512, 3),
  };

  for (const ssp::LoopNest& nest : suite) {
    bench::TextTable table({"plan", "level", "II", "stages", "regs",
                            "predicted", "simulated", "conflicts",
                            "speedup_vs_inner"});
    const ssp::LevelPlan inner = ssp::innermost_plan(nest, model);
    const auto inner_cycles = static_cast<double>(inner.predicted_cycles);

    auto add_plan = [&](const std::string& name,
                        const ssp::LevelPlan& plan) {
      if (!plan.ok) {
        table.add_row(
            {name, "-", "-", "-", "-", "infeasible", "-", "-", "-"});
        return;
      }
      const ssp::SimulationResult sim =
          ssp::simulate_plan(nest, plan, model);
      table.add_row(
          {name, std::to_string(plan.level),
           std::to_string(plan.kernel.ii),
           std::to_string(plan.kernel.stages),
           std::to_string(plan.register_pressure),
           bench::TextTable::fmt(plan.predicted_cycles),
           bench::TextTable::fmt(sim.cycles),
           bench::TextTable::fmt(sim.conflicts),
           bench::TextTable::fmt(
               inner_cycles / static_cast<double>(plan.predicted_cycles),
               2)});
    };

    add_plan("innermost", inner);
    for (std::size_t level = 0; level + 1 < nest.levels(); ++level) {
      add_plan("forced_L" + std::to_string(level),
               ssp::plan_level(nest, level, model));
    }
    add_plan("ssp_selected", ssp::choose_level(nest, model));

    std::printf("--- nest: %s (sequential baseline: %llu cycles) ---\n",
                nest.name().c_str(),
                static_cast<unsigned long long>(
                    ssp::sequential_cycles(nest)));
    reporter.table(nest.name(), table);
  }
  return 0;
}
