#include "parcel/engine.h"

#include <algorithm>
#include <cassert>

#include "obs/latency.h"

namespace htvm::parcel {

ParcelEngine::ParcelEngine(rt::Runtime& runtime,
                           ReliabilityOptions reliability)
    : runtime_(runtime),
      reliability_options_(reliability),
      fast_path_(lock_free_parcels()),
      faults_(runtime.options().config.faults) {
  switch (reliability_options_.mode) {
    case ReliabilityOptions::Mode::kOn: reliable_ = true; break;
    case ReliabilityOptions::Mode::kOff: reliable_ = false; break;
    case ReliabilityOptions::Mode::kAuto: reliable_ = faults_.active(); break;
  }
  nodes_ = runtime_.num_nodes();
  // Pool shards scale with worker parallelism (+1 for external threads);
  // the ablation flag turns the pool into plain new/delete.
  pool_ = std::make_unique<ParcelPool>(
      std::min<std::uint32_t>(runtime_.num_workers() + 1,
                              ParcelPool::kMaxShards),
      fast_path_);
  channels_.reserve(static_cast<std::size_t>(nodes_) * nodes_);
  for (std::size_t i = 0; i < static_cast<std::size_t>(nodes_) * nodes_; ++i)
    channels_.push_back(std::make_unique<Channel>());
  handlers_snapshot_.store(std::make_shared<const HandlerTable>(),
                           std::memory_order_release);
  rtt_hist_ = runtime_.metrics().histogram("parcel.rtt");
  poller_id_ =
      runtime_.add_poller([this](std::uint32_t node) { return poll(node); });
  register_metrics();
}

ParcelEngine::~ParcelEngine() {
  // Let every in-flight parcel deliver (or dead-letter), then detach from
  // the runtime so no worker can call into a dead engine. Channels are
  // destroyed before the pool (member order), returning every parked
  // ParcelRef; the pool then asserts its live ledger is zero.
  runtime_.wait_idle();
  runtime_.remove_poller(poller_id_);
  for (const auto id : metric_sources_) runtime_.metrics().remove_source(id);
}

void ParcelEngine::register_metrics() {
  obs::MetricsRegistry& reg = runtime_.metrics();
  const struct {
    const char* name;
    const std::atomic<std::uint64_t>* value;
  } counters[] = {
      {"parcel.sent", &stats_.sent},
      {"parcel.delivered", &stats_.delivered},
      {"parcel.replies", &stats_.replies},
      {"parcel.bytes", &stats_.bytes},
      {"parcel.retries", &stats_.retries},
      {"parcel.drops", &stats_.drops},
      {"parcel.duplicates", &stats_.duplicates},
      {"parcel.dup_suppressed", &stats_.dup_suppressed},
      {"parcel.acks", &stats_.acks},
      {"parcel.dead_letters", &stats_.dead_letters},
      {"parcel.ack_parcels", &stats_.ack_parcels},
      {"parcel.acks_coalesced", &stats_.acks_coalesced},
  };
  for (const auto& c : counters) {
    metric_sources_.push_back(reg.add_counter_source(
        c.name, [value = c.value] {
          return static_cast<double>(
              value->load(std::memory_order_relaxed));
        }));
  }
  metric_sources_.push_back(reg.add_counter_source(
      "pool.parcel.allocations",
      [this] { return static_cast<double>(pool_->stats().allocations); }));
  metric_sources_.push_back(reg.add_counter_source(
      "pool.parcel.recycle_hits",
      [this] { return static_cast<double>(pool_->stats().recycle_hits); }));
  metric_sources_.push_back(reg.add_gauge_source(
      "pool.parcel.live",
      [this] { return static_cast<double>(pool_->stats().live); }));
  metric_sources_.push_back(reg.add_gauge_source(
      "parcel.pending_tx", [this] {
        std::size_t sum = 0;
        for (const auto& ch : channels_)
          sum += ch->pending_size.load(std::memory_order_relaxed);
        return static_cast<double>(sum);
      }));
  metric_sources_.push_back(reg.add_gauge_source(
      "parcel.wheel.scheduled", [this] {
        std::size_t sum = 0;
        for (const auto& ch : channels_) sum += ch->wheel.scheduled();
        return static_cast<double>(sum);
      }));
}

EngineStats ParcelEngine::stats() const {
  EngineStats out;
  out.sent = stats_.sent.load(std::memory_order_relaxed);
  out.delivered = stats_.delivered.load(std::memory_order_relaxed);
  out.replies = stats_.replies.load(std::memory_order_relaxed);
  out.bytes = stats_.bytes.load(std::memory_order_relaxed);
  out.retries = stats_.retries.load(std::memory_order_relaxed);
  out.drops = stats_.drops.load(std::memory_order_relaxed);
  out.duplicates = stats_.duplicates.load(std::memory_order_relaxed);
  out.dup_suppressed = stats_.dup_suppressed.load(std::memory_order_relaxed);
  out.acks = stats_.acks.load(std::memory_order_relaxed);
  out.dead_letters = stats_.dead_letters.load(std::memory_order_relaxed);
  out.ack_parcels = stats_.ack_parcels.load(std::memory_order_relaxed);
  out.acks_coalesced =
      stats_.acks_coalesced.load(std::memory_order_relaxed);
  return out;
}

HandlerId ParcelEngine::register_handler(std::string name, Handler handler) {
  std::lock_guard<std::mutex> lock(handlers_mutex_);
  const auto id = static_cast<HandlerId>(handlers_build_.size());
  handlers_build_.push_back(std::move(handler));
  handler_names_.emplace(std::move(name), id);
  // Republish the whole table; in-flight deliveries keep their old
  // snapshot alive through the shared_ptr.
  handlers_snapshot_.store(
      std::make_shared<const HandlerTable>(handlers_build_),
      std::memory_order_release);
  return id;
}

HandlerId ParcelEngine::handler_id(const std::string& name) const {
  std::lock_guard<std::mutex> lock(handlers_mutex_);
  const auto it = handler_names_.find(name);
  assert(it != handler_names_.end() && "unknown parcel handler");
  return it->second;
}

ParcelEngine::Clock::duration ParcelEngine::network_delay(
    std::uint32_t src, std::uint32_t dst, std::uint64_t bytes) const {
  const double cycle_ns = runtime_.injector().cycle_ns();
  if (cycle_ns <= 0.0) return Clock::duration::zero();
  const std::uint64_t cycles =
      runtime_.options().config.network_cycles(src, dst, bytes);
  return std::chrono::nanoseconds(
      static_cast<std::uint64_t>(static_cast<double>(cycles) * cycle_ns));
}

ParcelEngine::Clock::duration ParcelEngine::retransmit_timeout(
    const Parcel& parcel) const {
  // Base floor (covers poll cadence in functional mode) plus twice the
  // modeled round trip when latency injection is on.
  const auto rtt =
      network_delay(parcel.src_node, parcel.dst_node, parcel.model_size()) +
      network_delay(parcel.dst_node, parcel.src_node, 8);
  return std::chrono::duration_cast<Clock::duration>(
             reliability_options_.base_timeout) +
         2 * rtt;
}

void ParcelEngine::trace_transport(const char* name, const Parcel& parcel) {
  trace::Tracer* tracer = runtime_.tracer();
  if (tracer == nullptr || !tracer->enabled()) return;
  trace::Event e;
  e.category = "parcel";
  e.static_name = name;
  e.phase = trace::Phase::kInstant;
  e.pid = trace::kLaneParcelNodes;
  e.lane = parcel.src_node;
  e.start = runtime_.trace_now_us();
  tracer->record_event(e);
}

std::uint64_t ParcelEngine::flow_key(const Parcel& parcel) const {
  const std::uint64_t stream =
      static_cast<std::uint64_t>(parcel.src_node) * nodes_ + parcel.dst_node;
  return (stream << 32) | (parcel.seq & 0xFFFFFFFFull);
}

void ParcelEngine::trace_flow(const char* name, trace::Phase phase,
                              const Parcel& parcel, std::uint32_t lane) {
  trace::Tracer* tracer = runtime_.tracer();
  if (tracer == nullptr || !tracer->enabled()) return;
  tracer->record_flow("parcel", name, phase, flow_key(parcel),
                      trace::kLaneParcelNodes, lane,
                      runtime_.trace_now_us());
}

ParcelRef ParcelEngine::make_parcel() {
  return ParcelRef::adopt(pool_->acquire());
}

void ParcelEngine::enqueue_physical(ParcelRef parcel, Clock::time_point due) {
  Channel& ch = channel(parcel->src_node, parcel->dst_node);
  {
    util::Guard<util::SpinLock> g(ch.submit_lock);
    ch.submit.push_back(
        Timed{due, order_.fetch_add(1, std::memory_order_relaxed),
              std::move(parcel)});
    ch.submit_size.store(ch.submit.size(), std::memory_order_relaxed);
  }
  ch.queued.fetch_add(1, std::memory_order_relaxed);
  // A physical parcel in a channel is pending work: hold a work token so
  // wait_idle() cannot return while it sits there, and wake parked
  // workers to poll. The token is released when a drain pops the copy.
  runtime_.hold_work();
  runtime_.notify_work();
}

void ParcelEngine::transmit(const ParcelRef& parcel) {
  const bool cross = parcel->dst_node != parcel->src_node;
  // Only acknowledged traffic may be dropped: losing an unreliable parcel
  // would leak its pending work forever. Reliable data recovers via
  // retransmit; a lost ack is recovered by the data retransmit + re-ack.
  const bool faulty =
      faults_.active() && cross &&
      (parcel->reliable || parcel->kind == ParcelKind::kAck);
  const auto now = Clock::now();
  const auto base_delay = network_delay(parcel->src_node, parcel->dst_node,
                                        parcel->model_size());
  if (!faulty) {
    enqueue_physical(parcel, now + base_delay);
    return;
  }
  const double cycle_ns = runtime_.injector().cycle_ns();
  auto jitter = [&]() -> Clock::duration {
    const std::uint64_t cycles = faults_.jitter_cycles();
    if (cycles == 0 || cycle_ns <= 0.0) return Clock::duration::zero();
    return std::chrono::nanoseconds(static_cast<std::uint64_t>(
        static_cast<double>(cycles) * cycle_ns));
  };
  if (faults_.should_drop()) {
    stats_.drops.fetch_add(1, std::memory_order_relaxed);
    trace_transport("drop", *parcel);
    return;
  }
  enqueue_physical(parcel, now + base_delay + jitter());
  if (faults_.should_duplicate()) {
    stats_.duplicates.fetch_add(1, std::memory_order_relaxed);
    trace_transport("dup", *parcel);
    enqueue_physical(parcel, now + base_delay + jitter());
  }
}

void ParcelEngine::submit(ParcelRef parcel) {
  stats_.sent.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes.fetch_add(parcel->model_size(), std::memory_order_relaxed);
  const std::uint32_t src = parcel->src_node;
  const std::uint32_t dst = parcel->dst_node;
  if (reliable_ && src != dst) {
    // Same-node parcels never traverse the network, so only cross-node
    // traffic pays for sequencing and acknowledgment.
    parcel->reliable = true;
    Channel& tx = channel(src, dst);
    parcel->seq = tx.next_seq.fetch_add(1, std::memory_order_relaxed) + 1;
    if (fast_path_) {
      // Piggyback the reverse stream's receive watermark: dst learns how
      // much of its dst->src traffic we have delivered without an
      // explicit ack message. piggy_cum remembers the best watermark
      // already carried out so the drain can skip redundant acks.
      Channel& rx = channel(dst, src);
      const std::uint64_t cum =
          rx.rx_contiguous.load(std::memory_order_relaxed);
      if (cum > 0) {
        parcel->ack_cum = cum;
        std::uint64_t prev = rx.piggy_cum.load(std::memory_order_relaxed);
        while (prev < cum && !rx.piggy_cum.compare_exchange_weak(
                                 prev, cum, std::memory_order_relaxed)) {
        }
      }
    }
    const auto timeout = retransmit_timeout(*parcel);
    const auto now = Clock::now();
    {
      util::Guard<util::SpinLock> g(tx.tx_lock);
      tx.pending.insert(parcel->seq,
                        PendingTx{parcel, now + timeout, timeout, 0});
      if (fast_path_) tx.wheel.schedule(parcel->seq, now + timeout);
      tx.pending_size.store(tx.pending.size(), std::memory_order_relaxed);
    }
    // One logical work token per un-acked parcel: wait_idle() stays
    // blocked until the message is acknowledged or dead-lettered.
    runtime_.hold_work();
    // Flow arrow start: Perfetto stitches this to the retransmit steps
    // and the delivery on the destination lane via flow_key.
    trace_flow("xfer", trace::Phase::kFlowStart, *parcel, src);
  }
  transmit(parcel);
}

void ParcelEngine::send(std::uint32_t dst_node, HandlerId handler,
                        Payload payload) {
  ParcelRef p = make_parcel();
  p->dst_node = dst_node;
  p->src_node = runtime_.current_node();
  p->handler = handler;
  p->payload = std::move(payload);
  submit(std::move(p));
}

sync::Future<Payload> ParcelEngine::request(std::uint32_t dst_node,
                                            HandlerId handler,
                                            Payload payload) {
  sync::Future<Payload> reply;
  ParcelRef p = make_parcel();
  p->dst_node = dst_node;
  p->src_node = runtime_.current_node();
  p->handler = handler;
  p->payload = std::move(payload);
  // Round-trip stamp, echoed on the reply parcel (a field, not a lambda
  // capture: keeps on_reply inside std::function's inline buffer).
  p->send_ns = obs::now_ns();
  p->on_reply = [reply](Payload value) { reply.set(std::move(value)); };
  submit(std::move(p));
  return reply;
}

void ParcelEngine::invoke_at(std::uint32_t dst_node,
                             std::uint64_t modeled_bytes,
                             std::function<void()> fn) {
  ParcelRef p = make_parcel();
  p->dst_node = dst_node;
  p->src_node = runtime_.current_node();
  p->closure = std::move(fn);
  // Sizing for the latency model only: no bytes are materialized.
  p->modeled_bytes = modeled_bytes;
  submit(std::move(p));
}

bool ParcelEngine::poll(std::uint32_t node) {
  bool did = false;
  for (std::uint32_t src = 0; src < nodes_; ++src) {
    Channel& ch = channel(src, node);
    if (ch.queued.load(std::memory_order_relaxed) > 0 ||
        ch.ack_debt.load(std::memory_order_relaxed) > 0)
      did |= drain_channel(ch, src, node);
  }
  if (reliable_) {
    for (std::uint32_t dst = 0; dst < nodes_; ++dst) {
      if (dst == node) continue;
      Channel& ch = channel(node, dst);
      if (ch.pending_size.load(std::memory_order_relaxed) > 0)
        did |= run_channel_timer(ch);
    }
  }
  return did;
}

bool ParcelEngine::drain_channel(Channel& ch, std::uint32_t src,
                                 std::uint32_t node) {
  bool did = false;
  // Pop-one-deliver-one: the drain lock is never held across a handler,
  // so a handler that blocks on a reply arriving through this same
  // channel cannot deadlock -- its help-loop poll re-enters here.
  while (true) {
    if (!ch.drain_lock.try_lock()) return did;  // another worker drains
    const auto now = Clock::now();
    if (ch.submit_size.load(std::memory_order_relaxed) > 0) {
      // Two-list swap: take the whole producer batch in one lock hit.
      {
        util::Guard<util::SpinLock> g(ch.submit_lock);
        ch.swap_scratch.swap(ch.submit);
        ch.submit_size.store(0, std::memory_order_relaxed);
      }
      for (Timed& t : ch.swap_scratch) {
        if (t.due <= now)
          ch.ready.push_back(std::move(t));
        else
          ch.delayed.push(std::move(t));
      }
      ch.swap_scratch.clear();
    }
    while (!ch.delayed.empty() && ch.delayed.top().due <= now) {
      // priority_queue::top is const; moving out is safe because pop()
      // immediately discards the moved-from element.
      ch.ready.push_back(std::move(const_cast<Timed&>(ch.delayed.top())));
      ch.delayed.pop();
    }
    if (ch.ready_pos >= ch.ready.size()) {
      ch.ready.clear();
      ch.ready_pos = 0;
      // Batch boundary: settle the ack debt this drain accumulated.
      AckFlush flush;
      settle_ack_debt(ch, flush);
      ch.drain_lock.unlock();
      if (flush.send) {
        send_ack_parcel(src, node, flush);
        did = true;
      }
      return did;
    }
    Timed t = std::move(ch.ready[ch.ready_pos++]);
    ParcelRef parcel = std::move(t.parcel);
    bool suppressed = false;
    if (parcel->kind == ParcelKind::kData && parcel->reliable)
      suppressed = classify_rx(ch, *parcel);
    ch.drain_lock.unlock();
    ch.queued.fetch_sub(1, std::memory_order_relaxed);
    process_popped(parcel, suppressed, node);
    // Drop the reference before the token: wait_idle() returning implies
    // the pool's live ledger is back to zero.
    parcel.reset();
    runtime_.release_work();  // the physical in-flight token
    did = true;
  }
}

bool ParcelEngine::classify_rx(Channel& ch, const Parcel& parcel) {
  // Drain lock held: rx state is single-writer here.
  const std::uint64_t seq = parcel.seq;
  std::uint64_t c = ch.rx_contiguous.load(std::memory_order_relaxed);
  bool suppressed = false;
  if (seq <= c || ch.rx_out_of_order.count(seq) > 0) {
    suppressed = true;
  } else if (seq == c + 1) {
    ++c;
    // Fold in any out-of-order arrivals the gap closure reaches.
    auto it = ch.rx_out_of_order.begin();
    while (it != ch.rx_out_of_order.end() && *it == c + 1) {
      ++c;
      it = ch.rx_out_of_order.erase(it);
    }
    ch.rx_contiguous.store(c, std::memory_order_relaxed);
  } else {
    ch.rx_out_of_order.insert(seq);
  }
  if (fast_path_) {
    // Every copy (duplicates included) leaves ack debt: the previous ack
    // may have been dropped.
    ch.ack_debt.fetch_add(1, std::memory_order_relaxed);
    if (seq > ch.rx_contiguous.load(std::memory_order_relaxed)) {
      // Above the watermark: only a selective ack can confirm it. On
      // overflow the seq is simply not sel-acked this batch; the
      // sender's retransmit re-offers it.
      bool listed = false;
      for (std::uint32_t i = 0; i < ch.ack_sel_count; ++i)
        if (ch.ack_sel[i] == seq) listed = true;
      if (!listed && ch.ack_sel_count < Parcel::kMaxSelAcks)
        ch.ack_sel[ch.ack_sel_count++] = seq;
    }
  }
  return suppressed;
}

void ParcelEngine::process_popped(const ParcelRef& parcel, bool suppressed,
                                  std::uint32_t node) {
  if (parcel->kind == ParcelKind::kAck) {
    Channel& tx = channel(node, parcel->src_node);
    const std::uint64_t erased =
        apply_acks(tx, parcel->ack_cum, parcel->ack_seqs, parcel->ack_count);
    if (erased > 0) {
      stats_.acks.fetch_add(erased, std::memory_order_relaxed);
      // One ack message confirming N parcels saved N-1 messages.
      if (erased > 1)
        stats_.acks_coalesced.fetch_add(erased - 1,
                                        std::memory_order_relaxed);
    }
    return;
  }
  if (parcel->reliable && parcel->ack_cum > 0) {
    // Piggybacked watermark on a reverse-direction data parcel: every
    // confirmation here is an ack message that never had to exist.
    Channel& tx = channel(node, parcel->src_node);
    const std::uint64_t erased = apply_acks(tx, parcel->ack_cum, nullptr, 0);
    if (erased > 0) {
      stats_.acks.fetch_add(erased, std::memory_order_relaxed);
      stats_.acks_coalesced.fetch_add(erased, std::memory_order_relaxed);
    }
  }
  if (parcel->reliable && !fast_path_) {
    // Ablation: ack every received copy individually (pre-coalescing
    // behavior), including duplicates.
    AckFlush flush;
    flush.send = true;
    flush.cum = 0;
    flush.sel_count = 1;
    flush.sel[0] = parcel->seq;
    send_ack_parcel(parcel->src_node, node, flush);
  }
  if (suppressed) {
    stats_.dup_suppressed.fetch_add(1, std::memory_order_relaxed);
    trace_transport("dup_suppressed", *parcel);
    return;
  }
  deliver(*parcel, node);
}

void ParcelEngine::settle_ack_debt(Channel& ch, AckFlush& flush) {
  // Drain lock held.
  if (ch.ack_debt.load(std::memory_order_relaxed) == 0) return;
  const std::uint64_t cum = ch.rx_contiguous.load(std::memory_order_relaxed);
  if (ch.ack_sel_count == 0 &&
      ch.piggy_cum.load(std::memory_order_relaxed) >= cum) {
    // Reverse-direction data already carried a watermark covering the
    // whole debt: no explicit ack needed.
    ch.ack_debt.store(0, std::memory_order_relaxed);
    return;
  }
  flush.send = true;
  flush.cum = cum;
  flush.sel_count = ch.ack_sel_count;
  for (std::uint32_t i = 0; i < ch.ack_sel_count; ++i)
    flush.sel[i] = ch.ack_sel[i];
  ch.ack_sel_count = 0;
  ch.ack_debt.store(0, std::memory_order_relaxed);
}

void ParcelEngine::send_ack_parcel(std::uint32_t data_src, std::uint32_t node,
                                   const AckFlush& flush) {
  ParcelRef ack = make_parcel();
  ack->kind = ParcelKind::kAck;
  ack->dst_node = data_src;
  ack->src_node = node;
  ack->ack_cum = flush.cum;
  ack->ack_count = flush.sel_count;
  for (std::uint32_t i = 0; i < flush.sel_count; ++i)
    ack->ack_seqs[i] = flush.sel[i];
  // Sizing for the latency model only (watermark + selective list).
  ack->modeled_bytes = 8 + 8ull * flush.sel_count;
  stats_.ack_parcels.fetch_add(1, std::memory_order_relaxed);
  transmit(ack);
}

std::uint64_t ParcelEngine::apply_acks(Channel& ch, std::uint64_t cum,
                                       const std::uint64_t* sel,
                                       std::uint32_t sel_count) {
  std::uint64_t erased = 0;
  {
    util::Guard<util::SpinLock> g(ch.tx_lock);
    // Dense walk from the acked floor: each seq is O(1) in the ring, and
    // already-erased holes (selective acks, dead letters) just miss.
    while (ch.acked_floor < cum) {
      ++ch.acked_floor;
      if (ch.pending.erase(ch.acked_floor)) ++erased;
    }
    for (std::uint32_t i = 0; i < sel_count; ++i)
      if (ch.pending.erase(sel[i])) ++erased;
    ch.pending_size.store(ch.pending.size(), std::memory_order_relaxed);
  }
  // The wheel entry of an erased seq cancels lazily on expiry.
  for (std::uint64_t i = 0; i < erased; ++i)
    runtime_.release_work();  // the logical in-flight tokens
  return erased;
}

bool ParcelEngine::run_channel_timer(Channel& ch) {
  if (!ch.tx_lock.try_lock()) return false;
  const auto now = Clock::now();
  // Local so concurrent timer runs on other channels cannot alias; they
  // only allocate when something actually expired (exceptional path).
  std::vector<ParcelRef> expired;
  std::vector<ParcelRef> exhausted;
  const auto max_timeout = std::chrono::duration_cast<Clock::duration>(
      reliability_options_.max_timeout);
  if (fast_path_) {
    ch.expired_scratch.clear();
    ch.wheel.advance(now, ch.expired_scratch);
    for (const std::uint64_t seq : ch.expired_scratch) {
      PendingTx* entry = ch.pending.find(seq);
      if (entry == nullptr) continue;  // acked meanwhile: lazy cancel
      if (entry->retries >= reliability_options_.max_retries) {
        exhausted.push_back(std::move(ch.pending.take(seq).parcel));
        continue;
      }
      ++entry->retries;
      const auto backed_off = std::chrono::duration_cast<Clock::duration>(
          entry->timeout * reliability_options_.backoff);
      entry->timeout = std::min(backed_off, max_timeout);
      entry->deadline = now + entry->timeout;
      ch.wheel.schedule(seq, entry->deadline);
      expired.push_back(entry->parcel);
    }
  } else {
    // Ablation: the pre-wheel O(pending) deadline scan.
    std::vector<std::uint64_t> exhausted_seqs;
    ch.pending.for_each([&](std::uint64_t seq, PendingTx& entry) {
      if (entry.deadline > now) return;
      if (entry.retries >= reliability_options_.max_retries) {
        exhausted_seqs.push_back(seq);
        return;
      }
      ++entry.retries;
      const auto backed_off = std::chrono::duration_cast<Clock::duration>(
          entry.timeout * reliability_options_.backoff);
      entry.timeout = std::min(backed_off, max_timeout);
      entry.deadline = now + entry.timeout;
      expired.push_back(entry.parcel);
    });
    for (const std::uint64_t seq : exhausted_seqs)
      exhausted.push_back(std::move(ch.pending.take(seq).parcel));
  }
  ch.pending_size.store(ch.pending.size(), std::memory_order_relaxed);
  ch.tx_lock.unlock();
  // Act outside the lock: transmit takes channel submit locks and
  // dead_letter can run arbitrary continuations (which may send parcels
  // themselves).
  for (const auto& parcel : expired) {
    stats_.retries.fetch_add(1, std::memory_order_relaxed);
    trace_transport("retry", *parcel);
    trace_flow("xfer", trace::Phase::kFlowStep, *parcel, parcel->src_node);
    transmit(parcel);
  }
  for (auto& parcel : exhausted) dead_letter(std::move(parcel));
  return !expired.empty() || !exhausted.empty();
}

void ParcelEngine::dead_letter(ParcelRef parcel) {
  stats_.dead_letters.fetch_add(1, std::memory_order_relaxed);
  trace_transport("dead_letter", *parcel);
  // Resolve the requester's future with an empty payload so nothing ever
  // blocks on a message the network has eaten. claim() excludes the
  // (unlikely) race with a late copy still being delivered.
  if (parcel->claim() && parcel->on_reply) parcel->on_reply(Payload{});
  // Reference before token (see drain_channel): wait_idle() => live == 0.
  parcel.reset();
  runtime_.release_work();  // the logical in-flight token
}

void ParcelEngine::deliver(Parcel& parcel, std::uint32_t node) {
  // A reliable parcel the sender has already dead-lettered must not run:
  // its requester future is settled and the sender stopped counting it.
  if (parcel.reliable && !parcel.claim()) return;
  stats_.delivered.fetch_add(1, std::memory_order_relaxed);
  if (parcel.reliable)
    trace_flow("xfer", trace::Phase::kFlowEnd, parcel, node);
  // The handler/closure run shows as a complete span on the destination
  // node's parcel lane.
  trace::Span deliver_span(runtime_.tracer(), "parcel", "deliver", node,
                           trace::kLaneParcelNodes);
  if (parcel.closure) {
    parcel.closure();
    return;
  }
  if (parcel.is_reply) {
    if (parcel.send_ns != 0) {
      // Request round trip, recorded requester-side (shard = worker id;
      // external threads fold into shard 0).
      rtt_hist_->record(
          static_cast<std::uint32_t>(
              std::max<std::int32_t>(rt::Runtime::current_worker(), 0)),
          obs::now_ns() - parcel.send_ns);
    }
    // Keep the payload intact (a retransmitted copy may still be in
    // flight); Future::set ignores a second resolution anyway.
    if (parcel.on_reply) parcel.on_reply(parcel.payload);
    return;
  }
  const auto table = handlers_snapshot_.load(std::memory_order_acquire);
  assert(table != nullptr && parcel.handler < table->size());
  Payload reply = (*table)[parcel.handler](parcel.payload, parcel.src_node);
  if (parcel.on_reply) {
    stats_.replies.fetch_add(1, std::memory_order_relaxed);
    // The reply travels back over the network (reliably, if the request
    // did) before the requester sees it.
    ParcelRef back = make_parcel();
    back->dst_node = parcel.src_node;
    back->src_node = node;
    back->is_reply = true;
    back->send_ns = parcel.send_ns;  // echo the round-trip stamp
    back->on_reply = std::move(parcel.on_reply);
    parcel.on_reply = nullptr;
    back->payload = std::move(reply);
    submit(std::move(back));
  }
}

}  // namespace htvm::parcel
