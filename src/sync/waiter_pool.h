// Pooled, type-erased waiter nodes: the buffering substrate for the
// lock-free future/data-slot protocol (paper §3.2, "efficient localized
// buffering of requests at the site of the needed values").
//
// A WaiterNode carries one consumer continuation in inline storage plus
// the intrusive `next` link that threads it onto a future's Treiber
// stack. Nodes are recycled through a two-tier pool mirroring
// rt::TaskPool: a per-thread cache (owner-only, lock-free by
// construction) backed by a shared free list under a spin lock, refilled
// and flushed in batches. Steady-state producer/consumer churn therefore
// touches neither the heap nor the shared lock: acquire pops the thread
// cache, release pushes it back. SyncStats records allocs vs reuse so
// benches and tests can assert the fast path stays allocation-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "sync/sync_stats.h"

namespace htvm::sync {

struct WaiterNode {
  // Fits a lambda capturing a shared_ptr + a few words, or any
  // std::function. Larger callables spill to one heap cell owned by the
  // node for the callable's life (rare; counted as a plain node still).
  static constexpr std::size_t kInlineBytes = 48;

  WaiterNode* next = nullptr;
  // Runs the stored consumer with `value` (a const T* for the queue's T)
  // and destroys the callable. Exactly one of invoke/drop is called
  // between acquire and release.
  void (*invoke)(WaiterNode*, const void* value) = nullptr;
  // Destroys the callable without running it (queue teardown).
  void (*drop)(WaiterNode*) = nullptr;
  alignas(std::max_align_t) unsigned char storage[kInlineBytes];
};

// Pool entry points. acquire returns a node with undefined callable
// state; release requires the callable already invoked or dropped.
WaiterNode* acquire_waiter_node();
void release_waiter_node(WaiterNode* node);

// Pool occupancy (shared list + thread caches are not distinguishable
// cheaply; this is the shared-list size, for tests).
std::size_t waiter_pool_shared_size();

// Binds a consumer callable to a pooled node. T is the value type the
// queue will invoke with; F must be callable as f(const T&).
template <typename T, typename F>
WaiterNode* make_waiter(F&& fn) {
  using Fn = std::decay_t<F>;
  WaiterNode* node = acquire_waiter_node();
  if constexpr (sizeof(Fn) <= WaiterNode::kInlineBytes &&
                alignof(Fn) <= alignof(std::max_align_t)) {
    ::new (static_cast<void*>(node->storage)) Fn(std::forward<F>(fn));
    node->invoke = [](WaiterNode* n, const void* value) {
      Fn* f = std::launder(reinterpret_cast<Fn*>(n->storage));
      (*f)(*static_cast<const T*>(value));
      f->~Fn();
    };
    node->drop = [](WaiterNode* n) {
      std::launder(reinterpret_cast<Fn*>(n->storage))->~Fn();
    };
  } else {
    // Spilled callable: the node stores an owning pointer instead.
    auto* heap = new Fn(std::forward<F>(fn));
    ::new (static_cast<void*>(node->storage)) Fn*(heap);
    node->invoke = [](WaiterNode* n, const void* value) {
      Fn* f = *std::launder(reinterpret_cast<Fn**>(n->storage));
      (*f)(*static_cast<const T*>(value));
      delete f;
    };
    node->drop = [](WaiterNode* n) {
      delete *std::launder(reinterpret_cast<Fn**>(n->storage));
    };
  }
  return node;
}

}  // namespace htvm::sync
