// Adaptive controller: the runtime half of the paper's continuous
// compilation (§2, §3.3). Per code site it selects among a set of policies
// (e.g. loop schedulers) using measured invocation spans, with structured
// hints supplying the starting choice.
//
// Selection strategy: every policy is sampled at least `explore_rounds`
// times; afterwards the controller exploits the best observed mean with a
// periodic probe of the runner-up (workloads drift -- the paper's phase
// changes). Scores use an exponentially-weighted mean so old phases decay.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace htvm::adapt {

class PolicyScoreboard {
 public:
  explicit PolicyScoreboard(std::vector<std::string> policies,
                            double decay = 0.3);

  // Record one observation (lower cost = better) for `policy`.
  void observe(const std::string& policy, double cost);

  // Observation counts / decayed means.
  std::uint64_t samples(const std::string& policy) const;
  double score(const std::string& policy) const;

  // Best (lowest decayed mean) among policies with >= 1 sample.
  std::optional<std::string> best() const;
  // Second best, for periodic probing.
  std::optional<std::string> runner_up() const;
  // Least-sampled policy (ties broken by lower decayed mean): what a
  // probe round should measure to keep every option's score fresh.
  std::string least_sampled() const;

  const std::vector<std::string>& policies() const { return policies_; }

 private:
  struct Cell {
    std::uint64_t samples = 0;
    double ewma = 0.0;
  };
  std::vector<std::string> policies_;
  double decay_;
  std::map<std::string, Cell> cells_;
};

class AdaptiveController {
 public:
  struct Options {
    std::uint32_t explore_rounds = 1;  // min samples per policy first
    std::uint32_t probe_period = 8;    // exploit rounds between probes
    double decay = 0.3;
    // Probe only policies whose decayed score is within this factor of
    // the best (clearly-bad policies are not re-run), unless unsampled.
    double probe_max_ratio = 2.0;
    // Phase-change trigger: if the exploited winner's measured cost
    // exceeds jump_ratio x its decayed score, re-explore every policy.
    double jump_ratio = 1.5;
  };

  AdaptiveController(std::vector<std::string> policies, Options options);

  // Chooses the policy for the next invocation of `site`. Hint-primed
  // sites (set_initial) start from the hinted policy.
  std::string choose(const std::string& site);

  // Reports the measured cost (e.g. invocation span in seconds) of the
  // policy previously chosen for `site`.
  void report(const std::string& site, const std::string& policy,
              double cost);

  void set_initial(const std::string& site, const std::string& policy);

  // External phase-change signal (e.g. the telemetry sampler observing a
  // system-wide throughput shift): every site re-explores its policies at
  // its next choose(), exactly as if the jump_ratio detector had fired.
  void signal_phase_change();

  // Introspection.
  std::optional<std::string> current_best(const std::string& site) const;
  std::uint64_t switches(const std::string& site) const;
  std::uint64_t reexplorations(const std::string& site) const;

 private:
  struct SiteState {
    PolicyScoreboard scoreboard;
    std::string last_choice;
    std::optional<std::string> initial;
    std::uint32_t rounds_since_probe = 0;
    std::uint64_t switches = 0;
    std::uint64_t reexplorations = 0;
    // Samples taken in the current exploration generation; a detected
    // phase change starts a new generation and re-samples every policy.
    std::map<std::string, std::uint32_t> gen_samples;
    std::uint64_t generation = 0;
    // Last externally signaled phase epoch this site has reacted to.
    std::uint64_t seen_phase_epoch = 0;
    explicit SiteState(std::vector<std::string> policies, double decay)
        : scoreboard(std::move(policies), decay) {}
  };

  SiteState& state(const std::string& site);

  std::vector<std::string> policies_;
  Options options_;
  mutable std::mutex mutex_;
  std::map<std::string, SiteState> sites_;
  std::uint64_t phase_epoch_ = 0;  // bumped by signal_phase_change()
};

}  // namespace htvm::adapt
