file(REMOVE_RECURSE
  "CMakeFiles/htvm_litlx.dir/litlx/collectives.cc.o"
  "CMakeFiles/htvm_litlx.dir/litlx/collectives.cc.o.d"
  "CMakeFiles/htvm_litlx.dir/litlx/forall.cc.o"
  "CMakeFiles/htvm_litlx.dir/litlx/forall.cc.o.d"
  "CMakeFiles/htvm_litlx.dir/litlx/machine.cc.o"
  "CMakeFiles/htvm_litlx.dir/litlx/machine.cc.o.d"
  "libhtvm_litlx.a"
  "libhtvm_litlx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htvm_litlx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
