// Periodic registry sampler: the runtime-monitor feedback channel of the
// paper's Fig. 1 made concrete. A background thread (off by default)
// snapshots the MetricsRegistry at a configurable period and keeps a
// bounded ring of per-interval deltas; adapt::PerfMonitor ingests them as
// rate statistics, the adaptive controller uses throughput jumps as a
// phase-change signal, and bench --json embeds the ring alongside its
// timing series.
//
// Counter metrics appear in a delta as the increment over the interval;
// gauge metrics appear as their level at the sample instant. Metrics that
// did not change are still listed (delta 0) so consumers see a stable
// schema.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/registry.h"

namespace htvm::obs {

struct SampleDelta {
  std::uint64_t sequence = 0;  // sample index, starting at 1
  double dt_seconds = 0.0;     // wall time since the previous sample
  std::vector<MetricValue> deltas;  // sorted by name
  // Registered histograms at the sample instant (cumulative since
  // registry birth, NOT per-interval: percentiles don't difference
  // meaningfully, so consumers get the level and diff counts if they
  // need rates). Sorted by name.
  std::vector<HistogramStats> histograms;
};

struct SamplerOptions {
  std::chrono::milliseconds period{10};
  std::size_t ring_capacity = 128;  // oldest deltas are evicted
};

class Sampler {
 public:
  using Options = SamplerOptions;
  // Invoked synchronously on the sampler thread after each delta is
  // ringed (and from sample_once() callers). Must not call back into
  // this Sampler.
  using Callback = std::function<void(const SampleDelta&)>;

  explicit Sampler(MetricsRegistry& registry, Options options = {});
  ~Sampler();  // stops the thread

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  // Set before start(); not thread-safe against a running sampler.
  void set_callback(Callback callback) { callback_ = std::move(callback); }

  void start();
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  // One deterministic tick (snapshot + delta + ring + callback), usable
  // without start() for tests and single-threaded harnesses.
  void sample_once();

  // Ring contents, oldest first; `max_items` = 0 returns everything.
  std::vector<SampleDelta> recent(std::size_t max_items = 0) const;
  std::uint64_t samples_taken() const {
    return samples_.load(std::memory_order_relaxed);
  }
  const Options& options() const { return options_; }

 private:
  MetricsRegistry& registry_;
  Options options_;
  Callback callback_;
  std::atomic<bool> running_{false};
  std::thread thread_;
  std::atomic<std::uint64_t> samples_{0};

  mutable std::mutex mutex_;  // guards ring_ and prev_
  std::deque<SampleDelta> ring_;
  std::map<std::string, double> prev_counters_;
  std::chrono::steady_clock::time_point prev_time_;
  bool primed_ = false;
};

}  // namespace htvm::obs
