// Iterative modulo scheduling (Rau, MICRO-27), the kernel scheduler both
// innermost software pipelining and SSP build on.
#pragma once

#include <cstdint>
#include <vector>

#include "ssp/dependence.h"
#include "ssp/resource_model.h"

namespace htvm::ssp {

struct KernelSchedule {
  bool ok = false;
  std::uint32_t ii = 0;
  std::vector<std::uint32_t> start;  // issue cycle per op (flat schedule)
  std::uint32_t stages = 0;          // ceil(span / ii)
  std::uint32_t span = 0;            // last issue + latency

  // Verifies every projected dependence: start[dst] + II*distance >=
  // start[src] + latency. Returns true when the schedule is legal.
  bool respects(const std::vector<Dep1D>& deps) const;
};

// Schedules `ops` at the smallest feasible II in [max(ResMII,RecMII),
// max_ii]. Uses height-based priority and bounded eviction (budget per II).
KernelSchedule modulo_schedule(const std::vector<Op>& ops,
                               const std::vector<Dep1D>& deps,
                               const ResourceModel& model,
                               std::uint32_t max_ii = 256);

}  // namespace htvm::ssp
