# Empty dependencies file for htvm_sync.
# This may be replaced when dependencies are built.
