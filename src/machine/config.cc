#include "machine/config.h"

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <unordered_map>

namespace htvm::machine {

const char* to_string(MemLevel level) {
  switch (level) {
    case MemLevel::kRegister: return "register";
    case MemLevel::kFrame: return "frame";
    case MemLevel::kLocalSram: return "local_sram";
    case MemLevel::kLocalDram: return "local_dram";
    case MemLevel::kRemote: return "remote";
  }
  return "?";
}

const char* to_string(Topology topology) {
  switch (topology) {
    case Topology::kCrossbar: return "crossbar";
    case Topology::kMesh2D: return "mesh2d";
    case Topology::kTorus2D: return "torus2d";
  }
  return "?";
}

std::uint32_t MachineConfig::mem_latency(MemLevel level) const {
  switch (level) {
    case MemLevel::kRegister: return latency_register;
    case MemLevel::kFrame: return latency_frame;
    case MemLevel::kLocalSram: return latency_local_sram;
    case MemLevel::kLocalDram: return latency_local_dram;
    case MemLevel::kRemote:
      // Nominal single-hop remote access; exact cost depends on the node
      // pair and is computed by remote_access_cycles().
      return latency_local_dram + network.inject_cycles * 2 +
             network.hop_cycles * 2;
  }
  return 0;
}

std::uint32_t MachineConfig::grid_width() const {
  auto w = static_cast<std::uint32_t>(
      std::ceil(std::sqrt(static_cast<double>(nodes))));
  return w == 0 ? 1 : w;
}

std::uint32_t MachineConfig::hop_distance(std::uint32_t from,
                                          std::uint32_t to) const {
  if (from == to) return 0;
  switch (network.topology) {
    case Topology::kCrossbar:
      return 1;
    case Topology::kMesh2D: {
      const std::uint32_t w = grid_width();
      const auto dx = static_cast<std::int64_t>(from % w) -
                      static_cast<std::int64_t>(to % w);
      const auto dy = static_cast<std::int64_t>(from / w) -
                      static_cast<std::int64_t>(to / w);
      return static_cast<std::uint32_t>(std::llabs(dx) + std::llabs(dy));
    }
    case Topology::kTorus2D: {
      const std::uint32_t w = grid_width();
      const std::uint32_t h = (nodes + w - 1) / w;
      auto wrap = [](std::uint32_t a, std::uint32_t b, std::uint32_t n) {
        const std::uint32_t d = a > b ? a - b : b - a;
        return std::min(d, n - d);
      };
      return wrap(from % w, to % w, w) + wrap(from / w, to / w, h);
    }
  }
  return 1;
}

std::uint64_t MachineConfig::network_cycles(std::uint32_t from,
                                            std::uint32_t to,
                                            std::uint64_t bytes) const {
  if (from == to) return 0;
  const std::uint64_t hops = hop_distance(from, to);
  return network.inject_cycles +
         hops * static_cast<std::uint64_t>(network.hop_cycles) +
         static_cast<std::uint64_t>(network.cycles_per_byte *
                                    static_cast<double>(bytes));
}

std::uint64_t MachineConfig::remote_access_cycles(std::uint32_t from,
                                                  std::uint32_t to,
                                                  std::uint64_t bytes) const {
  if (from == to) return latency_local_dram;
  // Request (small) out, access, response (payload) back.
  return network_cycles(from, to, 16) + latency_local_dram +
         network_cycles(to, from, bytes);
}

std::string MachineConfig::validate() const {
  if (nodes == 0) return "nodes must be > 0";
  if (thread_units_per_node == 0) return "thread_units_per_node must be > 0";
  if (sockets_per_node == 0) return "sockets_per_node must be > 0";
  if (smt_per_core == 0) return "smt_per_core must be > 0";
  if (node_memory_bytes == 0) return "node_memory_bytes must be > 0";
  if (frame_memory_bytes == 0) return "frame_memory_bytes must be > 0";
  if (!(latency_frame >= latency_register))
    return "frame latency must be >= register latency";
  if (!(latency_local_sram >= latency_frame))
    return "local_sram latency must be >= frame latency";
  if (!(latency_local_dram >= latency_local_sram))
    return "local_dram latency must be >= local_sram latency";
  if (network.cycles_per_byte < 0) return "cycles_per_byte must be >= 0";
  if (faults.drop_probability < 0.0 || faults.drop_probability > 1.0)
    return "drop_probability must be in [0, 1]";
  if (faults.duplicate_probability < 0.0 || faults.duplicate_probability > 1.0)
    return "duplicate_probability must be in [0, 1]";
  if (thread_costs.sgt_spawn_cycles > thread_costs.lgt_spawn_cycles)
    return "SGT spawn cost must not exceed LGT spawn cost";
  if (thread_costs.tgt_spawn_cycles > thread_costs.sgt_spawn_cycles)
    return "TGT spawn cost must not exceed SGT spawn cost";
  return {};
}

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return {};
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

}  // namespace

std::string MachineConfig::parse(const std::string& text) {
  std::unordered_map<std::string, std::uint64_t*> uint_keys = {
      {"node_memory_bytes", &node_memory_bytes},
      {"frame_memory_bytes", &frame_memory_bytes},
      {"fault_seed", &faults.seed},
  };
  std::unordered_map<std::string, std::uint32_t*> u32_keys = {
      {"nodes", &nodes},
      {"thread_units_per_node", &thread_units_per_node},
      {"sockets_per_node", &sockets_per_node},
      {"smt_per_core", &smt_per_core},
      {"latency_register", &latency_register},
      {"latency_frame", &latency_frame},
      {"latency_local_sram", &latency_local_sram},
      {"latency_local_dram", &latency_local_dram},
      {"hop_cycles", &network.hop_cycles},
      {"inject_cycles", &network.inject_cycles},
      {"jitter_cycles", &faults.jitter_cycles},
      {"lgt_spawn_cycles", &thread_costs.lgt_spawn_cycles},
      {"sgt_spawn_cycles", &thread_costs.sgt_spawn_cycles},
      {"tgt_spawn_cycles", &thread_costs.tgt_spawn_cycles},
      {"context_switch_cycles", &thread_costs.context_switch_cycles},
      {"sync_signal_cycles", &thread_costs.sync_signal_cycles},
      {"steal_cycles", &thread_costs.steal_cycles},
  };

  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos)
      return "line " + std::to_string(line_no) + ": expected key = value";
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty() || value.empty())
      return "line " + std::to_string(line_no) + ": empty key or value";

    if (key == "topology") {
      if (value == "crossbar") network.topology = Topology::kCrossbar;
      else if (value == "mesh2d") network.topology = Topology::kMesh2D;
      else if (value == "torus2d") network.topology = Topology::kTorus2D;
      else return "line " + std::to_string(line_no) + ": unknown topology '" +
                  value + "'";
      continue;
    }
    std::unordered_map<std::string, double*> double_keys = {
        {"cycles_per_byte", &network.cycles_per_byte},
        {"drop_probability", &faults.drop_probability},
        {"duplicate_probability", &faults.duplicate_probability},
    };
    if (auto itd = double_keys.find(key); itd != double_keys.end()) {
      char* end = nullptr;
      const double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || v < 0)
        return "line " + std::to_string(line_no) + ": bad double value";
      *itd->second = v;
      continue;
    }

    char* end = nullptr;
    const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
      return "line " + std::to_string(line_no) + ": bad integer value";
    if (auto it = u32_keys.find(key); it != u32_keys.end()) {
      *it->second = static_cast<std::uint32_t>(v);
    } else if (auto it64 = uint_keys.find(key); it64 != uint_keys.end()) {
      *it64->second = v;
    } else {
      return "line " + std::to_string(line_no) + ": unknown key '" + key + "'";
    }
  }
  return validate();
}

std::string MachineConfig::to_string() const {
  std::ostringstream out;
  out << "nodes = " << nodes << '\n'
      << "thread_units_per_node = " << thread_units_per_node << '\n'
      << "sockets_per_node = " << sockets_per_node << '\n'
      << "smt_per_core = " << smt_per_core << '\n'
      << "topology = " << machine::to_string(network.topology) << '\n'
      << "latency_register = " << latency_register << '\n'
      << "latency_frame = " << latency_frame << '\n'
      << "latency_local_sram = " << latency_local_sram << '\n'
      << "latency_local_dram = " << latency_local_dram << '\n'
      << "hop_cycles = " << network.hop_cycles << '\n'
      << "inject_cycles = " << network.inject_cycles << '\n'
      << "cycles_per_byte = " << network.cycles_per_byte << '\n'
      << "drop_probability = " << faults.drop_probability << '\n'
      << "duplicate_probability = " << faults.duplicate_probability << '\n'
      << "jitter_cycles = " << faults.jitter_cycles << '\n'
      << "lgt_spawn_cycles = " << thread_costs.lgt_spawn_cycles << '\n'
      << "sgt_spawn_cycles = " << thread_costs.sgt_spawn_cycles << '\n'
      << "tgt_spawn_cycles = " << thread_costs.tgt_spawn_cycles << '\n';
  return out.str();
}

MachineConfig MachineConfig::cyclops64() {
  MachineConfig cfg;
  cfg.nodes = 1;
  cfg.thread_units_per_node = 160;
  cfg.latency_frame = 2;
  cfg.latency_local_sram = 20;   // on-chip SRAM banks via crossbar
  cfg.latency_local_dram = 80;
  cfg.network.topology = Topology::kCrossbar;
  return cfg;
}

MachineConfig MachineConfig::cluster(std::uint32_t nodes,
                                     std::uint32_t tus_per_node) {
  MachineConfig cfg;
  cfg.nodes = nodes;
  cfg.thread_units_per_node = tus_per_node;
  cfg.network.topology = Topology::kTorus2D;
  cfg.network.hop_cycles = 50;
  cfg.network.inject_cycles = 200;
  cfg.network.cycles_per_byte = 1.0;
  return cfg;
}

}  // namespace htvm::machine
