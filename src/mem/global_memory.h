// HTVM memory model, real-runtime side (paper §3.1.1):
//
//   "An LGT has its own private memory space, and all LGTs share a global
//    address space. A group of SGTs invoked from an LGT will see the
//    private memory of the LGT. An SGT invocation will have its own private
//    frame storage ... TGTs within an SGT share the frame storage of the
//    enclosing SGT."
//
// GlobalMemory realizes the shared global address space as per-node memory
// segments. A GlobalAddress packs (node, offset); get/put on a remote node
// incur the configured network latency via the LatencyInjector, so programs
// on the real runtime *feel* the machine's memory hierarchy.
//
// Allocation is a lock-free bump (CAS on an atomic watermark) with a
// per-node size-bucketed free list on the side: release() parks a block
// for reuse by a later alloc() of the same rounded size, so patterns that
// repeatedly retire and re-create equal-sized blocks (object migration
// ping-pong, replica churn) do not grow the watermark without bound.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "machine/latency.h"

namespace htvm::mem {

// 12 bits of node, 52 bits of offset.
class GlobalAddress {
 public:
  static constexpr std::uint32_t kNodeBits = 12;
  static constexpr std::uint32_t kOffsetBits = 52;
  static constexpr std::uint64_t kMaxOffset = (1ULL << kOffsetBits) - 1;
  static constexpr std::uint32_t kMaxNode = (1u << kNodeBits) - 1;

  GlobalAddress() = default;
  GlobalAddress(std::uint32_t node, std::uint64_t offset)
      : bits_((static_cast<std::uint64_t>(node) << kOffsetBits) |
              (offset & kMaxOffset)) {}

  static GlobalAddress from_bits(std::uint64_t bits) {
    GlobalAddress a;
    a.bits_ = bits;
    return a;
  }

  std::uint32_t node() const {
    return static_cast<std::uint32_t>(bits_ >> kOffsetBits);
  }
  std::uint64_t offset() const { return bits_ & kMaxOffset; }
  std::uint64_t bits() const { return bits_; }

  bool is_null() const { return bits_ == kNullBits; }
  static GlobalAddress null() { return from_bits(kNullBits); }

  GlobalAddress operator+(std::uint64_t delta) const {
    return GlobalAddress(node(), offset() + delta);
  }

  friend bool operator==(GlobalAddress a, GlobalAddress b) {
    return a.bits_ == b.bits_;
  }
  friend bool operator!=(GlobalAddress a, GlobalAddress b) {
    return a.bits_ != b.bits_;
  }

 private:
  // All-ones: node kMaxNode, max offset -- reserved as the null address.
  static constexpr std::uint64_t kNullBits = ~0ULL;
  std::uint64_t bits_ = kNullBits;
};

struct MemoryStats {
  std::atomic<std::uint64_t> local_accesses{0};
  std::atomic<std::uint64_t> remote_accesses{0};
  std::atomic<std::uint64_t> bytes_moved_remote{0};
  std::atomic<std::uint64_t> freelist_releases{0};
  std::atomic<std::uint64_t> freelist_reuses{0};
};

class GlobalMemory {
 public:
  // `injector` models access latency; pass cycle_ns = 0 in the injector to
  // run at full host speed (functional mode).
  explicit GlobalMemory(const machine::LatencyInjector& injector);

  GlobalMemory(const GlobalMemory&) = delete;
  GlobalMemory& operator=(const GlobalMemory&) = delete;

  std::uint32_t nodes() const {
    return static_cast<std::uint32_t>(segments_.size());
  }

  // Allocates `bytes` in node-local memory. Reuses a released block of the
  // same rounded size when one is parked, otherwise CAS-bumps the segment
  // watermark. Returns null on exhaustion.
  GlobalAddress alloc(std::uint32_t node, std::uint64_t bytes,
                      std::uint64_t align = 8);

  // Returns a block obtained from alloc() to the node's free list so a
  // later same-sized alloc can reuse it. `bytes` must be the original
  // request size. Blocks allocated with align > 8 must not be released.
  void release(GlobalAddress addr, std::uint64_t bytes);

  // Direct pointer to the backing storage. Valid for the machine lifetime.
  // This is the "I am on the owning node" fast path; remote code should use
  // get/put, which model the network.
  void* raw(GlobalAddress addr);
  const void* raw(GlobalAddress addr) const;

  // Copies out/in with latency charged according to accessing node vs the
  // address's home node.
  void get(std::uint32_t from_node, GlobalAddress src, void* dst,
           std::uint64_t bytes);
  void put(std::uint32_t from_node, GlobalAddress dst, const void* src,
           std::uint64_t bytes);

  // Data-race-free variants for seqlock-coordinated payloads (the object
  // space's lock-free read protocol): every touched shared byte is
  // accessed with relaxed atomic word/byte operations, so an optimistic
  // reader may observe a torn value but never a C++ data race -- the
  // caller discards torn copies via its version check.
  void get_atomic(std::uint32_t from_node, GlobalAddress src, void* dst,
                  std::uint64_t bytes);
  void put_atomic(std::uint32_t from_node, GlobalAddress dst,
                  const void* src, std::uint64_t bytes);
  // Global-to-global copy with atomic stores on the destination; charged
  // like get(from_node, src) (one pull across the network).
  void copy_atomic(std::uint32_t from_node, GlobalAddress src,
                   GlobalAddress dst, std::uint64_t bytes);

  // Typed convenience accessors.
  template <typename T>
  T load(std::uint32_t from_node, GlobalAddress addr) {
    T out;
    get(from_node, addr, &out, sizeof(T));
    return out;
  }
  template <typename T>
  void store(std::uint32_t from_node, GlobalAddress addr, const T& value) {
    put(from_node, addr, &value, sizeof(T));
  }

  // Atomic fetch-add on a 64-bit word in global memory (the split-phase
  // "remote atomic" every PIM-style design provides). Charges remote
  // latency when crossing nodes.
  std::int64_t fetch_add_i64(std::uint32_t from_node, GlobalAddress addr,
                             std::int64_t delta);

  // Bump watermark (high-water, includes blocks parked on the free list).
  std::uint64_t used_bytes(std::uint32_t node) const;
  std::uint64_t capacity_bytes(std::uint32_t node) const;
  // Bytes currently parked on the node's free list awaiting reuse.
  std::uint64_t free_list_bytes(std::uint32_t node) const;
  const MemoryStats& stats() const { return stats_; }
  const machine::LatencyInjector& injector() const { return injector_; }

 private:
  struct Segment {
    std::unique_ptr<std::byte[]> data;
    std::uint64_t capacity = 0;
    std::atomic<std::uint64_t> used{0};
    // Free list: rounded block size -> offsets, guarded by free_mutex.
    // free_count lets alloc skip the lock when the list is empty.
    std::atomic<std::uint64_t> free_count{0};
    std::mutex free_mutex;
    std::map<std::uint64_t, std::vector<std::uint64_t>> free_by_size;
  };

  static std::uint64_t rounded_size(std::uint64_t bytes) {
    return (bytes + 7) & ~std::uint64_t{7};
  }

  void charge(std::uint32_t from_node, std::uint32_t home_node,
              std::uint64_t bytes);

  const machine::LatencyInjector& injector_;
  std::vector<std::unique_ptr<Segment>> segments_;
  MemoryStats stats_;
};

}  // namespace htvm::mem
