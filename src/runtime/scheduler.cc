// Runtime construction, spawning APIs, LGT wakeup protocol, lifecycle.
#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "obs/export.h"
#include "runtime/runtime.h"
#include "runtime/tls.h"

namespace htvm::rt {

Runtime::Runtime(RuntimeOptions options)
    : options_(std::move(options)),
      injector_(options_.config, options_.cycle_ns) {
  const auto& cfg = options_.config;
  memory_ = std::make_unique<mem::GlobalMemory>(injector_);
  for (std::uint32_t n = 0; n < cfg.nodes; ++n) {
    frame_allocators_.push_back(std::make_unique<mem::FrameAllocator>());
    nodes_.push_back(std::make_unique<NodeState>());
  }

  // One worker per modeled thread unit, capped by max_workers. The cap is
  // distributed with its remainder (max_workers=6, nodes=4 -> 2+2+1+1, not
  // 1 each), so no granted worker budget is silently rounded away; at
  // least one worker per node is always kept even when max_workers < nodes.
  std::vector<std::uint32_t> node_workers(cfg.nodes,
                                          cfg.thread_units_per_node);
  if (options_.max_workers != 0) {
    const std::uint32_t base = options_.max_workers / cfg.nodes;
    const std::uint32_t remainder = options_.max_workers % cfg.nodes;
    for (std::uint32_t n = 0; n < cfg.nodes; ++n) {
      const std::uint32_t share = base + (n < remainder ? 1 : 0);
      node_workers[n] =
          std::max<std::uint32_t>(1, std::min(node_workers[n], share));
    }
  }
  std::uint32_t total = 0;
  for (const std::uint32_t count : node_workers) total += count;
  assert(options_.max_workers == 0 ||
         total <= std::max(options_.max_workers, cfg.nodes));

  // The topology tree is built over the post-cap layout, so steal order
  // reflects the workers that actually exist, not the nominal config.
  topology_ = machine::TopologyTree::from_config(cfg, node_workers);
  steal_batch_max_ = options_.topology_aware
                         ? std::max<std::uint32_t>(1, options_.steal_batch_max)
                         : 1;

  workers_.reserve(total);
  std::uint32_t id = 0;
  for (std::uint32_t n = 0; n < cfg.nodes; ++n) {
    for (std::uint32_t k = 0; k < node_workers[n]; ++k, ++id) {
      auto w = std::make_unique<Worker>();
      w->id = id;
      w->node = n;
      w->socket = topology_.place(id).socket;
      w->runtime = this;
      w->rng = util::Xoshiro256(0x5eed + id);
      workers_.push_back(std::move(w));
    }
  }
  // Per-worker victim lists. Topology mode: ascending steal distance, so
  // a round probes SMT siblings, then the socket, then the node, then
  // remote nodes, and the same-node prefix bound makes a node-scoped
  // round O(node width). Flat ablation: cyclic id order with same-node
  // victims first — the pre-topology scan, minus its O(total) filter
  // passes. Distances are precomputed either way so the steal hot path
  // only indexes an array.
  for (auto& w : workers_) {
    if (options_.topology_aware) {
      w->victims = topology_.victim_order(w->id);
      w->local_prefix = topology_.local_prefix(w->id);
    } else {
      for (std::uint32_t i = 1; i < total; ++i)
        w->victims.push_back((w->id + i) % total);
      const auto mid = std::stable_partition(
          w->victims.begin(), w->victims.end(), [&](std::uint32_t v) {
            return topology_.place(v).node == w->node;
          });
      w->local_prefix =
          static_cast<std::size_t>(mid - w->victims.begin());
    }
    w->victim_distance.reserve(w->victims.size());
    for (const std::uint32_t v : w->victims)
      w->victim_distance.push_back(topology_.distance(w->id, v));
    w->steal_buf.resize(steal_batch_max_);
  }
  // Per-socket inject queues (indexed by global socket id), and each
  // node's roster of populated sockets for routing. A socket id with no
  // workers (node narrower than sockets_per_node) gets a queue slot for
  // uniform indexing but joins no roster, so nothing ever routes to it.
  for (std::uint32_t s = 0; s < topology_.num_sockets(); ++s) {
    auto ss = std::make_unique<SocketState>();
    const auto& members = topology_.socket_workers(s);
    if (!members.empty()) {
      ss->node = topology_.place(members.front()).node;
      ss->inject.reserve(64);
      nodes_[ss->node]->sockets.push_back(s);
    }
    sockets_.push_back(std::move(ss));
  }

  task_pool_ = std::make_unique<TaskPool>(topology_);

  // Unified telemetry: one registry, sharded per worker. The runtime's
  // own counters resolve to stable Counter pointers before any worker
  // thread starts; pool counters are exposed as sources reading the
  // pools' existing atomics.
  metrics_ = std::make_unique<obs::MetricsRegistry>(total);
  counters_.sgts_executed = metrics_->counter("rt.sgts_executed");
  counters_.tgts_executed = metrics_->counter("rt.tgts_executed");
  counters_.lgt_resumes = metrics_->counter("rt.lgt_resumes");
  counters_.steals = metrics_->counter("rt.steals");
  counters_.failed_steal_rounds =
      metrics_->counter("rt.failed_steal_rounds");
  counters_.parks = metrics_->counter("rt.parks");
  counters_.steal_smt = metrics_->counter("rt.steal.smt");
  counters_.steal_core = metrics_->counter("rt.steal.core");
  counters_.steal_socket = metrics_->counter("rt.steal.socket");
  counters_.steal_remote = metrics_->counter("rt.steal.remote");
  counters_.steal_batch_tasks = metrics_->counter("rt.steal.batch_tasks");
  counters_.steal_inject = metrics_->counter("rt.steal.inject");
  counters_.busy_ns = metrics_->counter("rt.state.busy_ns");
  counters_.steal_ns = metrics_->counter("rt.state.steal_ns");
  counters_.park_ns = metrics_->counter("rt.state.park_ns");
  // Latency histograms (sharded like the counters, shard = worker id).
  // Registered even with HTVM_LATENCY=off so the telemetry schema is
  // stable; they just stay empty when recording is disabled.
  lat_.queue_wait = metrics_->histogram("rt.lat.queue_wait");
  lat_.queue_wait_local = metrics_->histogram("rt.lat.queue_wait.local");
  lat_.queue_wait_steal = metrics_->histogram("rt.lat.queue_wait.steal");
  lat_.queue_wait_inject = metrics_->histogram("rt.lat.queue_wait.inject");
  lat_.run = metrics_->histogram("rt.lat.run");
  lat_.steal_round = metrics_->histogram("rt.lat.steal_round");
  gauge_sources_.push_back(metrics_->add_counter_source(
      "pool.task.allocations",
      [this] { return static_cast<double>(task_pool_->stats().allocations); }));
  gauge_sources_.push_back(metrics_->add_counter_source(
      "pool.task.recycle_hits", [this] {
        return static_cast<double>(task_pool_->stats().recycle_hits);
      }));
  gauge_sources_.push_back(metrics_->add_gauge_source(
      "pool.task.live",
      [this] { return static_cast<double>(task_pool_->stats().live); }));
  gauge_sources_.push_back(metrics_->add_counter_source(
      "pool.frame.allocations", [this] {
        std::uint64_t sum = 0;
        for (const auto& fa : frame_allocators_) sum += fa->allocations();
        return static_cast<double>(sum);
      }));
  gauge_sources_.push_back(metrics_->add_counter_source(
      "pool.frame.recycle_hits", [this] {
        std::uint64_t sum = 0;
        for (const auto& fa : frame_allocators_) sum += fa->recycle_hits();
        return static_cast<double>(sum);
      }));
  gauge_sources_.push_back(metrics_->add_gauge_source(
      "pool.frame.live", [this] {
        std::uint64_t sum = 0;
        for (const auto& fa : frame_allocators_) sum += fa->frames_live();
        return static_cast<double>(sum);
      }));
  // Global-memory traffic joins the registry as sources over the atomics
  // GlobalMemory already bumps; the object space's mem.* counters are
  // registered by whoever constructs it with this registry (litlx).
  gauge_sources_.push_back(metrics_->add_counter_source(
      "mem.local_accesses", [this] {
        return static_cast<double>(memory_->stats().local_accesses.load(
            std::memory_order_relaxed));
      }));
  gauge_sources_.push_back(metrics_->add_counter_source(
      "mem.remote_accesses", [this] {
        return static_cast<double>(memory_->stats().remote_accesses.load(
            std::memory_order_relaxed));
      }));
  gauge_sources_.push_back(metrics_->add_counter_source(
      "mem.remote_bytes", [this] {
        return static_cast<double>(
            memory_->stats().bytes_moved_remote.load(
                std::memory_order_relaxed));
      }));
  // Sync-layer counters (PR-6): htvm_sync cannot depend on htvm_obs, so
  // its sharded process-wide SyncStats bridge into the registry here, the
  // same way GlobalMemory's mem.* traffic does. Note these totals are
  // process-wide (all runtimes and external sync objects), not scoped to
  // this runtime instance.
  gauge_sources_.push_back(metrics_->add_counter_source(
      "sync.signals",
      [] { return static_cast<double>(sync::stats().signals()); }));
  gauge_sources_.push_back(metrics_->add_counter_source(
      "sync.fires",
      [] { return static_cast<double>(sync::stats().fires()); }));
  gauge_sources_.push_back(metrics_->add_counter_source(
      "sync.over_signals",
      [] { return static_cast<double>(sync::stats().over_signals()); }));
  gauge_sources_.push_back(metrics_->add_counter_source(
      "sync.buffered_waiters", [] {
        return static_cast<double>(sync::stats().buffered_waiters());
      }));
  gauge_sources_.push_back(metrics_->add_counter_source(
      "sync.node_reuse",
      [] { return static_cast<double>(sync::stats().node_reuse()); }));

  // End-of-run dumps controlled by the environment: HTVM_TRACE=<path>
  // attaches an owned, enabled tracer whose Chrome JSON is written at
  // shutdown; HTVM_METRICS=<path> writes one telemetry snapshot.
  if (const char* path = std::getenv("HTVM_TRACE");
      path != nullptr && *path != '\0' && tracer_ == nullptr) {
    env_trace_path_ = path;
    env_tracer_ = std::make_unique<trace::Tracer>();
    env_tracer_->enable();
    tracer_ = env_tracer_.get();
  }
  if (const char* path = std::getenv("HTVM_METRICS");
      path != nullptr && *path != '\0') {
    env_metrics_path_ = path;
  }
  // Live inspector: HTVM_STATUS_PERIOD_MS=<ms> starts a status thread
  // appending one htvm.status.v1 JSON line per period (plus a final line
  // at shutdown) to HTVM_STATUS_PATH (default stderr). SIGUSR1 prints the
  // human-readable dump_status table on demand regardless of the period.
  if (const char* ms = std::getenv("HTVM_STATUS_PERIOD_MS");
      ms != nullptr && *ms != '\0') {
    const long parsed = std::strtol(ms, nullptr, 10);
    if (parsed > 0) status_period_ = std::chrono::milliseconds(parsed);
  }
  if (const char* path = std::getenv("HTVM_STATUS_PATH");
      path != nullptr && *path != '\0') {
    status_path_ = path;
  }

  for (auto& w : workers_) {
    Worker* raw = w.get();
    raw->thread = std::thread([this, raw] { worker_main(*raw); });
  }
  start_status_thread();
}

Runtime::~Runtime() {
  wait_idle();
  stop_status_thread();  // final status line sees the idle end state
  stop_.store(true, std::memory_order_release);
  work_arrived();  // wake parked workers so they observe stop_
  for (auto& w : workers_) w->thread.join();
  dump_metrics();
  if (env_tracer_ != nullptr && !env_trace_path_.empty()) {
    if (std::FILE* f = std::fopen(env_trace_path_.c_str(), "w")) {
      const std::string json = env_tracer_->to_chrome_json();
      std::fwrite(json.data(), 1, json.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "runtime: cannot write trace to %s\n",
                   env_trace_path_.c_str());
    }
  }
  // Any tasks left in queues would be a wait_idle bug; their slots belong
  // to the pool, whose slab teardown destroys un-run callables.
}

void Runtime::dump_metrics() {
  if (metrics_dumped_) return;
  metrics_dumped_ = true;
  if (env_metrics_path_.empty()) return;
  obs::write_json_file(env_metrics_path_, metrics_->snapshot());
}

// ---------------------------------------------------------------- spawning

void Runtime::spawn_lgt(std::uint32_t node, std::function<void()> entry) {
  injector_.spawn_cost(0);
  auto lgt = std::make_unique<Lgt>(std::move(entry),
                                   options_.fiber_stack_bytes);
  lgt->node = node;
  lgt->runtime = this;
  task_started();
  enqueue_lgt(std::move(lgt));
}

std::int32_t Runtime::worker_hint() const {
  return detail::tl_runtime == this ? detail::tl_worker_id : -1;
}

Runtime::SocketState& Runtime::next_inject_socket(std::uint32_t node) {
  NodeState& ns = *nodes_[node];
  const std::uint32_t pick =
      ns.inject_cursor.fetch_add(1, std::memory_order_relaxed) %
      static_cast<std::uint32_t>(ns.sockets.size());
  return *sockets_[ns.sockets[pick]];
}

void Runtime::enqueue_sgt(std::uint32_t node, Task* task) {
  const std::int32_t wid = worker_hint();
  if (wid >= 0 && workers_[static_cast<std::size_t>(wid)]->node == node) {
    workers_[static_cast<std::size_t>(wid)]->deque.push(task);
    return;
  }
  SocketState& ss = next_inject_socket(node);
  {
    std::lock_guard<std::mutex> lock(ss.inject_mutex);
    ss.inject.push_back(task);
    // Counter mutations stay under the lock so a concurrent swap-drain
    // (which zeroes it) cannot interleave and leave a stale count.
    ss.inject_size.fetch_add(1, std::memory_order_release);
  }
}

void Runtime::spawn_sgt_batch(std::uint32_t node, std::span<Task> tasks) {
  if (tasks.empty()) return;
  for (std::size_t i = 0; i < tasks.size(); ++i) injector_.spawn_cost(1);
  outstanding_.fetch_add(tasks.size(), std::memory_order_acq_rel);
  // One real clock read stamps the whole batch (they are enqueued
  // together; per-task reads would only spread the stamps across the
  // lock hold) and re-seeds the published spawn clock. Unconditional
  // store: pool slots recycle and a stale stamp would fabricate a huge
  // queue-wait.
  const std::uint64_t stamp = obs::spawn_stamp(false);
  const std::int32_t wid = worker_hint();
  if (wid >= 0 && workers_[static_cast<std::size_t>(wid)]->node == node) {
    Worker& w = *workers_[static_cast<std::size_t>(wid)];
    for (Task& t : tasks) {
      Task* slot = task_pool_->allocate(wid);
      *slot = std::move(t);
      slot->stamp_ns = stamp;
      w.deque.push(slot);
    }
  } else {
    // One socket queue takes the whole batch under a single lock hold;
    // the round-robin cursor moves the next batch to a different socket.
    SocketState& ss = next_inject_socket(node);
    std::lock_guard<std::mutex> lock(ss.inject_mutex);
    for (Task& t : tasks) {
      Task* slot = task_pool_->allocate(wid);
      *slot = std::move(t);
      slot->stamp_ns = stamp;
      ss.inject.push_back(slot);
    }
    ss.inject_size.fetch_add(tasks.size(), std::memory_order_release);
  }
  work_arrived();
}

void Runtime::spawn_tgt_after(sync::SyncSlot& slot, std::uint32_t count,
                              std::function<void()> fn) {
  slot.arm(count, [this, fn = std::move(fn)] { spawn_tgt(fn); });
}

// ----------------------------------------------------------- fiber context

void Runtime::yield() {
  Lgt* lgt = current_lgt();
  assert(lgt != nullptr && "Runtime::yield outside an LGT fiber");
  lgt->runtime->injector_.cycles(
      lgt->runtime->options_.config.thread_costs.context_switch_cycles);
  lgt->exit_reason = Lgt::Exit::kYielded;
  Fiber::yield();
}

void Runtime::block_current_lgt(Lgt* lgt) {
  lgt->exit_reason = Lgt::Exit::kBlocked;
  Fiber::yield();
}

// ------------------------------------------------------- LGT queue protocol

void Runtime::enqueue_lgt(std::unique_ptr<Lgt> lgt) {
  NodeState& ns = *nodes_[lgt->node];
  {
    std::lock_guard<std::mutex> lock(ns.lgt_mutex);
    ns.lgt_ready.push_back(std::move(lgt));
  }
  work_arrived();
}

std::unique_ptr<Lgt> Runtime::take_blocked(Lgt* lgt) {
  std::lock_guard<std::mutex> lock(blocked_mutex_);
  for (auto& slot : blocked_lgts_) {
    if (slot.get() == lgt) {
      std::unique_ptr<Lgt> out = std::move(slot);
      slot = std::move(blocked_lgts_.back());
      blocked_lgts_.pop_back();
      return out;
    }
  }
  return nullptr;
}

void Runtime::lgt_checkin(Lgt* lgt) {
  // Second check-in (worker-side park or value arrival) re-enqueues.
  if (lgt->checkins.fetch_add(1, std::memory_order_acq_rel) == 1) {
    std::unique_ptr<Lgt> owned = take_blocked(lgt);
    assert(owned != nullptr && "blocked LGT missing from registry");
    enqueue_lgt(std::move(owned));
  }
}

void Runtime::gated_lgt_checkin(LgtWakeGate& gate, std::uint64_t epoch) {
  // The gate lock excludes ~Lgt, so the back-pointer read is safe; the
  // epoch check drops consumers from an earlier blocking episode.
  util::Guard<util::SpinLock> g(gate.lock);
  Lgt* lgt = gate.lgt;
  if (lgt == nullptr) return;  // LGT already finished and was destroyed
  if (lgt->wake_epoch.load(std::memory_order_acquire) != epoch) return;
  lgt->runtime->lgt_checkin(lgt);
}

std::size_t Runtime::lgt_queue_depth(std::uint32_t node) const {
  NodeState& ns = *nodes_[node];
  std::lock_guard<std::mutex> lock(ns.lgt_mutex);
  return ns.lgt_ready.size();
}

std::size_t Runtime::sgt_backlog(std::uint32_t node) const {
  // The topology's per-node index list bounds this to the node's own
  // workers; the old full-vector scan made every balancer round O(total
  // workers) per node, O(total * nodes) per pass.
  std::size_t total = 0;
  for (const std::uint32_t w : topology_.node_workers(node))
    total += workers_[w]->deque.size_estimate();
  for (const std::uint32_t s : nodes_[node]->sockets)
    total += sockets_[s]->inject_size.load(std::memory_order_acquire);
  return total;
}

bool Runtime::migrate_one_lgt(std::uint32_t from, std::uint32_t to) {
  if (from == to) return false;
  std::unique_ptr<Lgt> lgt;
  {
    NodeState& ns = *nodes_[from];
    std::lock_guard<std::mutex> lock(ns.lgt_mutex);
    if (ns.lgt_ready.empty()) return false;
    // Take from the back: the most recently enqueued LGT has the coldest
    // locality on `from`, making it the cheapest to move.
    lgt = std::move(ns.lgt_ready.back());
    ns.lgt_ready.pop_back();
  }
  injector_.network_transfer(from, to, 4096);  // context + hot state
  lgt->node = to;
  enqueue_lgt(std::move(lgt));
  return true;
}

// ------------------------------------------------------------- lifecycle

void Runtime::wait_idle() {
  std::unique_lock<std::mutex> lock(idle_mutex_);
  idle_cv_.wait(lock, [&] {
    return outstanding_.load(std::memory_order_acquire) == 0;
  });
}

void Runtime::task_finished() {
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    idle_cv_.notify_all();
  }
}

void Runtime::work_arrived() {
  work_epoch_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(park_mutex_);
  }
  park_cv_.notify_all();
}

// --------------------------------------------------------- introspection

Runtime* Runtime::current() { return detail::tl_runtime; }

Lgt* Runtime::current_lgt() { return detail::tl_lgt; }

std::int32_t Runtime::current_worker() { return detail::tl_worker_id; }

std::uint32_t Runtime::current_node() const {
  if (detail::tl_runtime == this && detail::tl_worker_id >= 0)
    return workers_[static_cast<std::size_t>(detail::tl_worker_id)]->node;
  return 0;
}

WorkerStats Runtime::worker_stats(std::uint32_t worker) const {
  WorkerStats out;
  out.sgts_executed = counters_.sgts_executed->shard(worker);
  out.tgts_executed = counters_.tgts_executed->shard(worker);
  out.lgt_resumes = counters_.lgt_resumes->shard(worker);
  out.steals = counters_.steals->shard(worker);
  out.failed_steal_rounds = counters_.failed_steal_rounds->shard(worker);
  out.parks = counters_.parks->shard(worker);
  return out;
}

WorkerStats Runtime::aggregate_stats() const {
  WorkerStats total;
  total.sgts_executed = counters_.sgts_executed->total();
  total.tgts_executed = counters_.tgts_executed->total();
  total.lgt_resumes = counters_.lgt_resumes->total();
  total.steals = counters_.steals->total();
  total.failed_steal_rounds = counters_.failed_steal_rounds->total();
  total.parks = counters_.parks->total();
  return total;
}

Runtime::PollerId Runtime::add_poller(Poller poller) {
  std::unique_lock<std::shared_mutex> lock(poller_mutex_);
  const PollerId id = next_poller_id_++;
  pollers_.emplace_back(id, std::move(poller));
  return id;
}

void Runtime::remove_poller(PollerId id) {
  // The exclusive lock also waits out any worker currently inside the
  // poller, so the caller may safely destroy its state afterwards.
  std::unique_lock<std::shared_mutex> lock(poller_mutex_);
  std::erase_if(pollers_, [id](const auto& p) { return p.first == id; });
}

bool Runtime::run_pollers(std::uint32_t node) {
  std::shared_lock<std::shared_mutex> lock(poller_mutex_);
  bool did = false;
  for (const auto& [id, p] : pollers_) did = p(node) || did;
  return did;
}

}  // namespace htvm::rt
