# Empty compiler generated dependencies file for htvm_litlx.
# This may be replaced when dependencies are built.
