#include "mem/data_object.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace htvm::mem {

ObjectSpace::ObjectSpace(GlobalMemory& memory, Params params)
    : memory_(memory), params_(params) {}

ObjectSpace::ObjectId ObjectSpace::create(std::uint32_t home_node,
                                          std::uint64_t bytes) {
  auto obj = std::make_unique<Object>();
  obj->bytes = bytes;
  obj->home = home_node;
  obj->home_storage = memory_.alloc(home_node, bytes);
  assert(!obj->home_storage.is_null() && "node memory exhausted");
  std::memset(memory_.raw(obj->home_storage), 0, bytes);
  obj->replica.assign(memory_.nodes(), GlobalAddress::null());
  obj->replica_valid.assign(memory_.nodes(), 0);
  obj->remote_reads.assign(memory_.nodes(), 0);
  obj->accesses.assign(memory_.nodes(), 0);

  std::lock_guard<std::mutex> lock(objects_mutex_);
  objects_.push_back(std::move(obj));
  return static_cast<ObjectId>(objects_.size() - 1);
}

GlobalAddress ObjectSpace::replica_storage_locked(Object& obj,
                                                  std::uint32_t node) {
  if (obj.replica[node].is_null())
    obj.replica[node] = memory_.alloc(node, obj.bytes);
  return obj.replica[node];
}

void ObjectSpace::read(std::uint32_t from_node, ObjectId id, void* dst) {
  read_at(from_node, id, 0, dst, size_of(id));
}

void ObjectSpace::read_at(std::uint32_t from_node, ObjectId id,
                          std::uint64_t offset, void* dst,
                          std::uint64_t len) {
  Object& obj = *objects_[id];
  std::lock_guard<std::mutex> lock(obj.mutex);
  ++obj.accesses[from_node];
  {
    std::lock_guard<std::mutex> slock(stats_mutex_);
    ++stats_.reads;
  }
  if (from_node == obj.home) {
    memory_.get(from_node, obj.home_storage + offset, dst, len);
    return;
  }
  if (obj.replica_valid[from_node]) {
    memory_.get(from_node, obj.replica[from_node] + offset, dst, len);
    return;
  }
  // Remote read from home.
  ++obj.remote_reads[from_node];
  {
    std::lock_guard<std::mutex> slock(stats_mutex_);
    ++stats_.remote_reads;
  }
  if (params_.replicate_reads &&
      obj.remote_reads[from_node] >= params_.replicate_threshold) {
    const GlobalAddress copy = replica_storage_locked(obj, from_node);
    if (!copy.is_null()) {
      // Pull the whole object across the network once; then read locally.
      memory_.get(from_node, obj.home_storage, memory_.raw(copy), obj.bytes);
      obj.replica_valid[from_node] = 1;
      {
        std::lock_guard<std::mutex> slock(stats_mutex_);
        ++stats_.replications;
      }
      memory_.get(from_node, copy + offset, dst, len);
      return;
    }
  }
  memory_.get(from_node, obj.home_storage + offset, dst, len);
}

void ObjectSpace::write(std::uint32_t from_node, ObjectId id,
                        const void* src) {
  write_at(from_node, id, 0, src, size_of(id));
}

void ObjectSpace::write_at(std::uint32_t from_node, ObjectId id,
                           std::uint64_t offset, const void* src,
                           std::uint64_t len) {
  Object& obj = *objects_[id];
  std::lock_guard<std::mutex> lock(obj.mutex);
  ++obj.accesses[from_node];
  {
    std::lock_guard<std::mutex> slock(stats_mutex_);
    ++stats_.writes;
  }
  invalidate_replicas_locked(obj, from_node);
  memory_.put(from_node, obj.home_storage + offset, src, len);
  if (params_.allow_migration) maybe_migrate_locked(obj, from_node);
}

void ObjectSpace::invalidate_replicas_locked(Object& obj,
                                             std::uint32_t except_node) {
  for (std::uint32_t n = 0; n < memory_.nodes(); ++n) {
    if (!obj.replica_valid[n]) continue;
    obj.replica_valid[n] = 0;
    if (n != except_node) {
      std::lock_guard<std::mutex> slock(stats_mutex_);
      ++stats_.invalidations;
      // Model the invalidation round trip from home to the replica holder.
      memory_.injector().network_transfer(obj.home, n, 16);
      memory_.injector().network_transfer(n, obj.home, 16);
    }
  }
}

void ObjectSpace::maybe_migrate_locked(Object& obj, std::uint32_t node) {
  if (node == obj.home) return;
  if (obj.accesses[node] < params_.migrate_threshold) return;
  if (obj.accesses[node] <= 2 * obj.accesses[obj.home]) return;
  // Move the authoritative copy to `node`.
  const GlobalAddress new_home = replica_storage_locked(obj, node);
  if (new_home.is_null()) return;  // destination node out of memory
  memory_.get(node, obj.home_storage, memory_.raw(new_home), obj.bytes);
  // Swap storage roles: the old home's block becomes reusable replica
  // storage *on the old home node*; the new home's replica slot is now
  // authoritative and must no longer be treated as a replica.
  obj.replica[obj.home] = obj.home_storage;
  obj.replica[node] = GlobalAddress::null();
  obj.home = node;
  obj.home_storage = new_home;
  for (std::uint32_t n = 0; n < memory_.nodes(); ++n) obj.replica_valid[n] = 0;
  std::fill(obj.remote_reads.begin(), obj.remote_reads.end(), 0u);
  std::fill(obj.accesses.begin(), obj.accesses.end(), 0u);
  std::lock_guard<std::mutex> slock(stats_mutex_);
  ++stats_.migrations;
}

void ObjectSpace::migrate(ObjectId id, std::uint32_t new_home) {
  Object& obj = *objects_[id];
  std::lock_guard<std::mutex> lock(obj.mutex);
  if (obj.home == new_home) return;
  const GlobalAddress dst = replica_storage_locked(obj, new_home);
  if (dst.is_null()) return;
  memory_.get(new_home, obj.home_storage, memory_.raw(dst), obj.bytes);
  obj.replica[obj.home] = obj.home_storage;
  obj.replica[new_home] = GlobalAddress::null();
  obj.home = new_home;
  obj.home_storage = dst;
  for (std::uint32_t n = 0; n < memory_.nodes(); ++n) obj.replica_valid[n] = 0;
  std::lock_guard<std::mutex> slock(stats_mutex_);
  ++stats_.migrations;
}

std::uint32_t ObjectSpace::home_of(ObjectId id) const {
  Object& obj = *objects_[id];
  std::lock_guard<std::mutex> lock(obj.mutex);
  return obj.home;
}

bool ObjectSpace::has_replica(ObjectId id, std::uint32_t node) const {
  Object& obj = *objects_[id];
  std::lock_guard<std::mutex> lock(obj.mutex);
  return obj.replica_valid[node] != 0;
}

std::uint64_t ObjectSpace::size_of(ObjectId id) const {
  return objects_[id]->bytes;
}

ObjectStats ObjectSpace::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace htvm::mem
