// E7 -- Percolation vs demand fetch (paper §3.2: "Percolation of program
// instruction blocks and data at the site of the intended computation, to
// eliminate waiting for remote accesses, which are determined at run time
// prior to actual block execution").
//
// A compute task consumes B remote blocks in order. A staging engine
// (DMA/percolation) may run up to `depth` block fetches ahead of the
// consumer; depth 0 is demand fetching (the ablation from DESIGN.md §7).
// Expected shape: makespan(depth 0) = B*(fetch+compute); as depth grows,
// makespan -> B*max(fetch, compute) + min-term fill; the knee sits where
// depth covers the fetch/compute ratio.
#include <memory>
#include <vector>

#include "common.h"
#include "sim/machine.h"

using namespace htvm;

namespace {

sim::Cycle run(std::uint32_t depth, int blocks, sim::Cycle fetch,
               sim::Cycle compute) {
  machine::MachineConfig cfg;
  cfg.nodes = 2;
  cfg.thread_units_per_node = 2;
  sim::SimMachine m(cfg);

  // ready[i]: block i staged; credit[i]: staging of block i may begin.
  std::vector<std::unique_ptr<sim::SimEvent>> ready;
  std::vector<std::unique_ptr<sim::SimEvent>> credit;
  for (int i = 0; i < blocks; ++i) {
    ready.push_back(std::make_unique<sim::SimEvent>(m, 1));
    credit.push_back(std::make_unique<sim::SimEvent>(m, 1));
  }
  // The first `depth+1` fetches may start immediately.
  for (int i = 0; i < blocks && i <= static_cast<int>(depth); ++i)
    credit[static_cast<std::size_t>(i)]->signal();

  auto* ready_raw = &ready;
  auto* credit_raw = &credit;

  // Staging engine on TU 1 (same node as the consumer).
  m.spawn_at(1, [=](sim::SimContext& ctx) -> sim::SimTask {
    for (int i = 0; i < blocks; ++i) {
      co_await (*credit_raw)[static_cast<std::size_t>(i)]->wait(ctx);
      co_await ctx.stall(fetch);  // remote block transfer in flight
      (*ready_raw)[static_cast<std::size_t>(i)]->signal();
    }
  });
  // Consumer on TU 0.
  m.spawn_at(0, [=, &m](sim::SimContext& ctx) -> sim::SimTask {
    for (int i = 0; i < blocks; ++i) {
      co_await (*ready_raw)[static_cast<std::size_t>(i)]->wait(ctx);
      co_await ctx.compute(compute);
      const int next = i + static_cast<int>(depth) + 1;
      if (next < blocks)
        (*credit_raw)[static_cast<std::size_t>(next)]->signal();
    }
    (void)m;
  });
  return m.run();
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "E7: percolation depth vs demand fetch (sim)",
      "staging data ahead of execution removes remote-wait time; depth 0 "
      "(demand fetch) pays fetch+compute per block, deep enough "
      "percolation pays only max(fetch, compute)");
  bench::Reporter reporter(argc, argv, "e7_percolation");

  const int blocks = 64;
  for (const auto& [fetch, compute] :
       std::vector<std::pair<sim::Cycle, sim::Cycle>>{
           {400, 400}, {1600, 400}, {400, 1600}, {6400, 400}}) {
    bench::TextTable table({"depth", "makespan", "vs_demand", "bound"});
    const sim::Cycle demand = run(0, blocks, fetch, compute);
    const sim::Cycle bound =
        static_cast<sim::Cycle>(blocks) * std::max(fetch, compute);
    for (std::uint32_t depth : {0u, 1u, 2u, 4u, 8u, 16u}) {
      const sim::Cycle t = run(depth, blocks, fetch, compute);
      table.add_row({std::to_string(depth), bench::TextTable::fmt(t),
                     bench::TextTable::fmt(
                         static_cast<double>(demand) /
                             static_cast<double>(t),
                         2),
                     bench::TextTable::fmt(bound)});
    }
    std::printf("--- fetch=%llu compute=%llu (per block, %d blocks) ---\n",
                static_cast<unsigned long long>(fetch),
                static_cast<unsigned long long>(compute), blocks);
    reporter.table("fetch=" + std::to_string(fetch) + "/compute=" +
                       std::to_string(compute),
                   table);
  }
  return 0;
}
