// Parallel loops over the HTVM hierarchy: the LITL-X construct that ties
// together loop-parallelism adaptation (schedulers), structured hints, the
// performance monitor, and the adaptive controller.
//
// Policy resolution order for one invocation:
//   1. options.schedule, if set (explicit program choice);
//   2. with options.adaptive: the AdaptiveController's pick for the site
//      (continuous-compilation mode; measured spans feed back into it);
//   3. a "schedule = ...;" hint for the site in the knowledge base;
//   4. guided self-scheduling (the robust default).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <type_traits>
#include <vector>

#include "litlx/machine.h"

namespace htvm::litlx {

struct ForallOptions {
  // Code-site id: keys hints, monitor records, and controller state.
  std::string site = "forall";
  // Explicit policy by scheduler name (see sched::scheduler_names()).
  std::string schedule;
  // Continuous compilation: let the controller pick the policy and learn
  // from the measured span of each invocation.
  bool adaptive = false;
  // Parallelism: number of chunk-puller SGTs. 0 = one per worker.
  std::uint32_t pullers = 0;
};

struct ForallResult {
  std::string policy;     // scheduler actually used
  double span_seconds = 0.0;
  std::uint64_t chunks = 0;
};

// Runs body(i) for every i in [begin, end). Blocks the caller until done
// (fiber-aware: from inside an LGT the fiber suspends instead).
ForallResult forall(Machine& machine, std::int64_t begin, std::int64_t end,
                    const std::function<void(std::int64_t)>& body,
                    ForallOptions options = {});

// Chunked form: body(chunk_begin, chunk_end), for vectorizable interiors.
ForallResult forall_chunks(
    Machine& machine, std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& body,
    ForallOptions options = {});

// Parallel reduction: combines body(i) values with `combine` (must be
// associative and commutative; evaluation order is unspecified). Each
// puller keeps a private accumulator (TGT-style frame locality); partials
// merge once at the end, so there is no shared-cell contention.
template <typename T, typename Body, typename Combine>
T forall_reduce(Machine& machine, std::int64_t begin, std::int64_t end,
                T identity, Body body, Combine combine,
                ForallOptions options = {}, ForallResult* result = nullptr) {
  const std::uint32_t pullers = options.pullers != 0
                                    ? options.pullers
                                    : machine.runtime().num_workers();
  options.pullers = pullers;
  std::vector<T> partial(pullers, identity);
  std::atomic<std::uint32_t> next_slot{0};
  // Slots are claimed once per puller SGT; chunk bodies on the same
  // puller reuse its slot via a thread-local-free trick: the slot index
  // travels in the chunk closure through a per-invocation map keyed by
  // the scheduler's worker id -- which is exactly the puller index, so we
  // can use it directly.
  ForallResult r = forall_chunks(
      machine, begin, end,
      [&](std::int64_t lo, std::int64_t hi) {
        // One accumulator per chunk, merged under a slot claimed from the
        // pool; cheap because chunks >> pullers merges are amortized.
        T acc = identity;
        for (std::int64_t i = lo; i < hi; ++i) acc = combine(acc, body(i));
        const std::uint32_t slot =
            next_slot.fetch_add(1, std::memory_order_relaxed) % pullers;
        static_assert(std::is_copy_assignable_v<T>);
        // Merge into the slot under a spin via atomic flag per slot is
        // avoided: slots are contended only when two chunks pick the same
        // slot concurrently, so serialize with a per-call mutex table.
        machine.atomically({&partial[slot]}, [&] {
          partial[slot] = combine(partial[slot], acc);
        });
      },
      options);
  T total = identity;
  for (const T& p : partial) total = combine(total, p);
  if (result != nullptr) *result = r;
  return total;
}

}  // namespace htvm::litlx
