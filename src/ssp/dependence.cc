#include "ssp/dependence.h"

#include <algorithm>
#include <limits>

namespace htvm::ssp {

std::vector<Dep1D> project_deps(const LoopNest& nest, std::size_t level) {
  std::vector<Dep1D> out;
  for (const Dep& dep : nest.deps()) {
    // First nonzero distance component above `level`?
    bool outer_carried = false;
    for (std::size_t l = 0; l < level; ++l) {
      if (dep.distance[l] != 0) {
        outer_carried = true;
        break;
      }
    }
    if (outer_carried) continue;  // satisfied by sequential outer loops
    if (dep.distance[level] == 0) {
      // Carried strictly by an inner level? Satisfied by the S*II rotation
      // gap between successive inner repetitions of a slice (see header).
      bool inner_carried = false;
      for (std::size_t l = level + 1; l < nest.levels(); ++l) {
        if (dep.distance[l] != 0) {
          inner_carried = true;
          break;
        }
      }
      if (inner_carried) continue;
    }
    Dep1D d;
    d.src = dep.src;
    d.dst = dep.dst;
    d.latency = nest.ops()[dep.src].latency;
    d.distance = std::max(0, dep.distance[level]);
    out.push_back(d);
  }
  return out;
}

std::uint32_t res_mii(const LoopNest& nest, const ResourceModel& model) {
  std::vector<std::uint32_t> uses(model.num_classes(), 0);
  for (const Op& op : nest.ops()) ++uses[op.resource];
  std::uint32_t mii = 1;
  for (std::size_t c = 0; c < model.num_classes(); ++c) {
    const std::uint32_t count = model.cls(c).count;
    const std::uint32_t need = (uses[c] + count - 1) / count;
    mii = std::max(mii, need);
  }
  return mii;
}

bool ii_feasible(std::size_t num_ops, const std::vector<Dep1D>& deps,
                 std::uint32_t ii) {
  // Longest-path feasibility: edges src -> dst with weight
  // latency - II*distance; infeasible iff a positive cycle exists.
  // Bellman-Ford style relaxation over |V| rounds.
  constexpr std::int64_t kNegInf = std::numeric_limits<std::int64_t>::min() / 4;
  std::vector<std::int64_t> dist(num_ops, 0);  // all sources at 0
  for (std::size_t round = 0; round < num_ops; ++round) {
    bool changed = false;
    for (const Dep1D& d : deps) {
      if (dist[d.src] == kNegInf) continue;
      const std::int64_t cand =
          dist[d.src] + static_cast<std::int64_t>(d.latency) -
          static_cast<std::int64_t>(ii) * d.distance;
      if (cand > dist[d.dst]) {
        dist[d.dst] = cand;
        changed = true;
      }
    }
    if (!changed) return true;  // converged: no positive cycle
  }
  // One more pass: any further relaxation implies a positive cycle.
  for (const Dep1D& d : deps) {
    const std::int64_t cand =
        dist[d.src] + static_cast<std::int64_t>(d.latency) -
        static_cast<std::int64_t>(ii) * d.distance;
    if (cand > dist[d.dst]) return false;
  }
  return true;
}

std::uint32_t rec_mii(std::size_t num_ops, const std::vector<Dep1D>& deps,
                      std::uint32_t cap) {
  for (std::uint32_t ii = 1; ii <= cap; ++ii) {
    if (ii_feasible(num_ops, deps, ii)) return ii;
  }
  return cap + 1;
}

bool level_carries_dependence(const std::vector<Dep1D>& deps) {
  return std::any_of(deps.begin(), deps.end(),
                     [](const Dep1D& d) { return d.distance > 0; });
}

}  // namespace htvm::ssp
