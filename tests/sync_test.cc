#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "util/rng.h"
#include "sync/atomic_block.h"
#include "sync/barrier.h"
#include "sync/future.h"
#include "sync/sync_slot.h"

namespace htvm::sync {
namespace {

// ----------------------------------------------------------------- SyncSlot

TEST(SyncSlot, FiresWhenCountReachesZero) {
  SyncSlot slot;
  int fired = 0;
  slot.arm(3, [&] { ++fired; });
  EXPECT_FALSE(slot.signal());
  EXPECT_FALSE(slot.signal());
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(slot.signal());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(slot.fired());
}

TEST(SyncSlot, ZeroCountFiresImmediately) {
  SyncSlot slot;
  int fired = 0;
  slot.arm(0, [&] { ++fired; });
  EXPECT_EQ(fired, 1);
}

TEST(SyncSlot, MultiSignalDecrementsByN) {
  SyncSlot slot;
  int fired = 0;
  slot.arm(5, [&] { ++fired; });
  EXPECT_FALSE(slot.signal(3));
  EXPECT_EQ(slot.pending(), 2u);
  EXPECT_TRUE(slot.signal(10));  // clamps at zero, fires once
  EXPECT_EQ(fired, 1);
}

TEST(SyncSlot, OverSignalAfterFireIsIgnored) {
  SyncSlot slot;
  int fired = 0;
  slot.arm(1, [&] { ++fired; });
  slot.signal();
  slot.signal();
  slot.signal();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(slot.fire_count(), 1u);
}

TEST(SyncSlot, RearmRestoresCount) {
  SyncSlot slot;
  int fired = 0;
  slot.arm(2, [&] { ++fired; });
  slot.signal(2);
  EXPECT_EQ(fired, 1);
  slot.rearm();
  EXPECT_EQ(slot.pending(), 2u);
  slot.signal(2);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(slot.fire_count(), 2u);
}

TEST(SyncSlot, RearmOnlySucceedsFromFiredState) {
  SyncSlot slot;
  int fired = 0;
  slot.arm(2, [&] { ++fired; });
  EXPECT_FALSE(slot.rearm());  // still pending: a no-op
  EXPECT_EQ(slot.pending(), 2u);
  slot.signal(2);
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(slot.rearm());
  EXPECT_FALSE(slot.rearm());  // already armed again
  EXPECT_EQ(slot.pending(), 2u);
}

TEST(SyncSlot, RearmBumpsTheRound) {
  SyncSlot slot;
  slot.arm(1, [] {});
  const std::uint32_t r0 = slot.round();
  slot.signal();
  EXPECT_TRUE(slot.rearm());
  EXPECT_EQ(slot.round(), r0 + 1);
}

TEST(SyncSlot, OverSignalsAreCountedPerSlot) {
  SyncSlot slot;
  slot.arm(1, [] {});
  slot.signal();
  EXPECT_EQ(slot.over_signals(), 0u);
  slot.signal();
  slot.signal();
  EXPECT_EQ(slot.over_signals(), 2u);
  EXPECT_EQ(slot.fire_count(), 1u);
}

TEST(SyncSlot, MutexAblationPathMatchesSemantics) {
  set_lock_free_sync(false);
  SyncSlot slot;  // samples the knob at construction
  set_lock_free_sync(true);
  int fired = 0;
  slot.arm(2, [&] { ++fired; });
  EXPECT_FALSE(slot.rearm());
  EXPECT_FALSE(slot.signal());
  EXPECT_TRUE(slot.signal());
  EXPECT_EQ(fired, 1);
  slot.signal();
  EXPECT_EQ(slot.over_signals(), 1u);
  EXPECT_TRUE(slot.rearm());
  EXPECT_EQ(slot.pending(), 2u);
  slot.signal(2);
  EXPECT_EQ(fired, 2);
}

TEST(SyncSlot, ConcurrentSignalsFireExactlyOnce) {
  for (int round = 0; round < 20; ++round) {
    SyncSlot slot;
    std::atomic<int> fired{0};
    constexpr int kThreads = 4;
    constexpr int kSignalsPerThread = 250;
    slot.arm(kThreads * kSignalsPerThread, [&] { ++fired; });
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < kSignalsPerThread; ++i) slot.signal();
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(fired.load(), 1);
  }
}

// Regression: concurrent multi-count signals whose total far exceeds the
// armed count must clamp at zero (never wrap the u32 counter back up),
// fire exactly once, and leave the slot rearm-able.
TEST(SyncSlot, ConcurrentOverSignalClampsAndFiresOnce) {
  for (int round = 0; round < 50; ++round) {
    SyncSlot slot;
    std::atomic<int> fired{0};
    slot.arm(100, [&] { ++fired; });
    constexpr int kThreads = 4;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 50; ++i) slot.signal(7);  // 1400 total vs 100
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(fired.load(), 1);
    EXPECT_EQ(slot.pending(), 0u);  // clamped, not wrapped
    EXPECT_EQ(slot.fire_count(), 1u);
    slot.rearm();
    EXPECT_EQ(slot.pending(), 100u);
    EXPECT_TRUE(slot.signal(100));
    EXPECT_EQ(fired.load(), 2);
  }
}

// ----------------------------------------------------------------- DataSlot

TEST(DataSlot, ConsumerAfterPutRunsInline) {
  DataSlot<int> slot;
  slot.put(42);
  int seen = 0;
  slot.when_ready([&](const int& v) { seen = v; });
  EXPECT_EQ(seen, 42);
}

TEST(DataSlot, ConsumersBufferedUntilPut) {
  DataSlot<std::string> slot;
  std::vector<std::string> seen;
  slot.when_ready([&](const std::string& v) { seen.push_back(v + "-a"); });
  slot.when_ready([&](const std::string& v) { seen.push_back(v + "-b"); });
  EXPECT_TRUE(seen.empty());
  slot.put("x");
  EXPECT_EQ(seen, (std::vector<std::string>{"x-a", "x-b"}));
}

TEST(DataSlot, ReadyFlag) {
  DataSlot<int> slot;
  EXPECT_FALSE(slot.ready());
  slot.put(1);
  EXPECT_TRUE(slot.ready());
  EXPECT_EQ(slot.value(), 1);
}

// Regression: a second put used to overwrite value_ while consumers could
// already be reading it. Write-once now: the loser is dropped entirely.
TEST(DataSlot, SecondPutIsIgnored) {
  DataSlot<int> slot;
  slot.put(1);
  slot.put(2);
  EXPECT_EQ(slot.value(), 1);
  int seen = 0;
  slot.when_ready([&](const int& v) { seen = v; });
  EXPECT_EQ(seen, 1);
}

// ------------------------------------------------------------------- Future

TEST(Future, GetReturnsSetValue) {
  Future<int> f;
  f.set(7);
  EXPECT_EQ(f.get(), 7);
  EXPECT_TRUE(f.ready());
}

TEST(Future, OnReadyBuffersUntilSet) {
  Future<int> f;
  int seen = 0;
  f.on_ready([&](const int& v) { seen = v; });
  EXPECT_EQ(f.buffered_consumers(), 1u);
  EXPECT_EQ(seen, 0);
  f.set(9);
  EXPECT_EQ(seen, 9);
  EXPECT_EQ(f.buffered_consumers(), 0u);
}

TEST(Future, ManyBufferedConsumersAllRun) {
  Future<int> f;
  std::atomic<int> sum{0};
  for (int i = 0; i < 100; ++i) f.on_ready([&](const int& v) { sum += v; });
  f.set(2);
  EXPECT_EQ(sum.load(), 200);
}

TEST(Future, SecondSetIsIgnored) {
  Future<int> f;
  f.set(1);
  f.set(2);
  EXPECT_EQ(f.get(), 1);
}

TEST(Future, GetBlocksUntilProducer) {
  Future<int> f;
  std::thread producer([f] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    f.set(5);
  });
  EXPECT_EQ(f.get(), 5);  // blocks until set
  producer.join();
}

TEST(Future, CopiesShareState) {
  Future<int> a;
  Future<int> b = a;
  a.set(3);
  EXPECT_EQ(b.get(), 3);
}

TEST(Future, ThenComposes) {
  Future<int> f;
  Future<int> g = f.then([](const int& v) { return v * 10; });
  EXPECT_FALSE(g.ready());
  f.set(4);
  EXPECT_EQ(g.get(), 40);
}

TEST(Future, ThenOnReadyFutureRunsInline) {
  Future<int> f;
  f.set(1);
  Future<int> g = f.then([](const int& v) { return v + 1; });
  EXPECT_TRUE(g.ready());
  EXPECT_EQ(g.get(), 2);
}

TEST(Future, ConcurrentConsumersAndProducer) {
  for (int round = 0; round < 10; ++round) {
    Future<int> f;
    std::atomic<int> sum{0};
    std::vector<std::thread> consumers;
    for (int t = 0; t < 4; ++t) {
      consumers.emplace_back([&, f] {
        for (int i = 0; i < 100; ++i)
          f.on_ready([&](const int& v) { sum += v; });
      });
    }
    std::thread producer([f] { f.set(1); });
    for (auto& t : consumers) t.join();
    producer.join();
    EXPECT_EQ(sum.load(), 400);
  }
}

// ------------------------------------------------------------------ Barrier

TEST(Barrier, SingleParticipantPassesThrough) {
  Barrier b(1);
  EXPECT_TRUE(b.arrive_and_wait());
  EXPECT_EQ(b.phase(), 1u);
}

TEST(Barrier, ArriveReturnsTrueOnceForLast) {
  Barrier b(3);
  EXPECT_FALSE(b.arrive());
  EXPECT_FALSE(b.arrive());
  EXPECT_TRUE(b.arrive());
  EXPECT_EQ(b.phase(), 1u);
}

TEST(Barrier, ReusableAcrossPhases) {
  Barrier b(2);
  for (int phase = 0; phase < 5; ++phase) {
    EXPECT_FALSE(b.arrive());
    EXPECT_TRUE(b.arrive());
  }
  EXPECT_EQ(b.phase(), 5u);
}

TEST(Barrier, ThreadsSynchronizeAcrossPhases) {
  constexpr int kThreads = 4;
  constexpr int kPhases = 50;
  Barrier barrier(kThreads);
  std::atomic<int> counter{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int p = 0; p < kPhases; ++p) {
        counter.fetch_add(1);
        barrier.arrive_and_wait();
        // Between barriers every thread must observe the full increment.
        if (counter.load() < kThreads * (p + 1)) failed = true;
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(counter.load(), kThreads * kPhases);
}

TEST(Barrier, ExactlyOneCompletionPerPhase) {
  constexpr int kThreads = 4;
  Barrier barrier(kThreads);
  std::atomic<int> completions{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int p = 0; p < 20; ++p)
        if (barrier.arrive_and_wait()) ++completions;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(completions.load(), 20);
}

// -------------------------------------------------------------- AtomicBlock

TEST(AtomicBlock, ExecutesTheBlock) {
  AtomicDomain domain;
  int x = 0;
  domain.atomically({&x}, [&] { x = 5; });
  EXPECT_EQ(x, 5);
}

TEST(AtomicBlock, MultiWordTransfersConserveTotal) {
  AtomicDomain domain;
  // Bank-transfer stress: concurrent transfers between 8 accounts must
  // conserve the total, and snapshot reads must never see a torn sum.
  constexpr int kAccounts = 8;
  constexpr int kThreads = 4;
  constexpr int kOps = 5000;
  std::array<long, kAccounts> balance{};
  balance.fill(1000);
  std::atomic<bool> torn{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kOps; ++i) {
        const auto a = static_cast<std::size_t>(rng.next_below(kAccounts));
        auto b = static_cast<std::size_t>(rng.next_below(kAccounts));
        if (a == b) b = (b + 1) % kAccounts;
        domain.atomically({&balance[a], &balance[b]}, [&] {
          balance[a] -= 1;
          balance[b] += 1;
        });
        if (i % 64 == 0) {
          long sum = 0;
          domain.atomically({&balance[0], &balance[1], &balance[2],
                             &balance[3], &balance[4], &balance[5],
                             &balance[6], &balance[7]},
                            [&] {
                              for (long v : balance) sum += v;
                            });
          if (sum != 1000 * kAccounts) torn = true;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(torn.load());
  long total = 0;
  for (long v : balance) total += v;
  EXPECT_EQ(total, 1000 * kAccounts);
}

TEST(AtomicBlock, TryAtomicallyFailsUnderConflict) {
  AtomicDomain domain;
  int x = 0;
  std::atomic<bool> locked{false};
  std::atomic<bool> release{false};
  std::thread holder([&] {
    domain.atomically({&x}, [&] {
      locked = true;
      while (!release.load()) util::cpu_relax();
    });
  });
  while (!locked.load()) util::cpu_relax();
  bool ran = domain.try_atomically({&x}, [&] { x = 1; });
  EXPECT_FALSE(ran);
  EXPECT_GE(domain.conflicts_observed(), 1u);
  release = true;
  holder.join();
  EXPECT_TRUE(domain.try_atomically({&x}, [&] { x = 2; }));
  EXPECT_EQ(x, 2);
}

TEST(AtomicBlock, StripeOfIsStable) {
  int x;
  EXPECT_EQ(AtomicDomain::stripe_of(&x), AtomicDomain::stripe_of(&x));
  EXPECT_LT(AtomicDomain::stripe_of(&x), AtomicDomain::kStripes);
}

TEST(AtomicBlock, DuplicateAddressesAreDeduplicated) {
  AtomicDomain domain;
  int x = 0;
  // Would self-deadlock if the same stripe were acquired twice.
  domain.atomically({&x, &x, &x}, [&] { x = 3; });
  EXPECT_EQ(x, 3);
}

TEST(AtomicBlock, SameCacheLineSharesStripe) {
  alignas(64) std::array<char, 64> line{};
  EXPECT_EQ(AtomicDomain::stripe_of(&line[0]),
            AtomicDomain::stripe_of(&line[63]));
}

}  // namespace
}  // namespace htvm::sync
