// Bump-pointer arena allocator.
//
// HTVM uses arenas for SGT frame storage and for LGT-private heaps: both are
// allocation domains whose lifetime is bounded by the owning thread, so a
// monotonic allocator with whole-arena reset is the natural fit and keeps
// fine-grain spawn paths free of malloc traffic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace htvm::util {

class Arena {
 public:
  explicit Arena(std::size_t block_size = 64 * 1024);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;

  // Returns block_size-independent storage, aligned to `align` (power of 2).
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t));

  template <typename T, typename... Args>
  T* create(Args&&... args) {
    void* p = allocate(sizeof(T), alignof(T));
    return ::new (p) T(static_cast<Args&&>(args)...);
  }

  template <typename T>
  T* allocate_array(std::size_t n) {
    return static_cast<T*>(allocate(sizeof(T) * n, alignof(T)));
  }

  // Releases all allocations at once. Keeps the first block for reuse.
  // Trivially-destructible contents only; the arena never runs destructors.
  void reset();

  std::size_t bytes_allocated() const { return bytes_allocated_; }
  std::size_t blocks() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  Block& grow(std::size_t min_bytes);

  std::size_t block_size_;
  std::vector<Block> blocks_;
  std::size_t bytes_allocated_ = 0;
};

}  // namespace htvm::util
