file(REMOVE_RECURSE
  "CMakeFiles/test_adapt.dir/adapt_test.cc.o"
  "CMakeFiles/test_adapt.dir/adapt_test.cc.o.d"
  "test_adapt"
  "test_adapt.pdb"
  "test_adapt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adapt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
