
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/deque.cc" "src/CMakeFiles/htvm_runtime.dir/runtime/deque.cc.o" "gcc" "src/CMakeFiles/htvm_runtime.dir/runtime/deque.cc.o.d"
  "/root/repo/src/runtime/fiber.cc" "src/CMakeFiles/htvm_runtime.dir/runtime/fiber.cc.o" "gcc" "src/CMakeFiles/htvm_runtime.dir/runtime/fiber.cc.o.d"
  "/root/repo/src/runtime/load_balancer.cc" "src/CMakeFiles/htvm_runtime.dir/runtime/load_balancer.cc.o" "gcc" "src/CMakeFiles/htvm_runtime.dir/runtime/load_balancer.cc.o.d"
  "/root/repo/src/runtime/scheduler.cc" "src/CMakeFiles/htvm_runtime.dir/runtime/scheduler.cc.o" "gcc" "src/CMakeFiles/htvm_runtime.dir/runtime/scheduler.cc.o.d"
  "/root/repo/src/runtime/worker.cc" "src/CMakeFiles/htvm_runtime.dir/runtime/worker.cc.o" "gcc" "src/CMakeFiles/htvm_runtime.dir/runtime/worker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/htvm_mem.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/htvm_sync.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/htvm_machine.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/htvm_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/htvm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
