#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace htvm::obs {

namespace {

void escape_into(std::ostringstream& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      out << ' ';
      continue;
    }
    out << c;
  }
}

// Metric values are counters or small reals; emit integers without a
// fractional part so counter comparisons in tests/tools stay exact, and
// keep non-finite values JSON-legal (null).
void number_into(std::ostringstream& out, double v) {
  if (!std::isfinite(v)) {
    out << "null";
    return;
  }
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 9.0e15) {
    out << static_cast<long long>(v);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out << buf;
}

void metrics_object_into(std::ostringstream& out,
                         const std::vector<MetricValue>& metrics) {
  out << '{';
  bool first = true;
  for (const MetricValue& m : metrics) {
    if (!first) out << ',';
    first = false;
    out << '"';
    escape_into(out, m.name);
    out << "\":";
    number_into(out, m.value);
  }
  out << '}';
}

void body_into(std::ostringstream& out, const TelemetrySnapshot& snapshot,
               const std::vector<SampleDelta>* samples) {
  out << "{\"schema\":\"htvm.telemetry.v1\",\"sequence\":"
      << snapshot.sequence << ",\"uptime_seconds\":";
  number_into(out, snapshot.uptime_seconds);
  out << ",\"metrics\":";
  metrics_object_into(out, snapshot.metrics);
  out << ",\"kinds\":{";
  bool first = true;
  for (const MetricValue& m : snapshot.metrics) {
    if (!first) out << ',';
    first = false;
    out << '"';
    escape_into(out, m.name);
    out << "\":\""
        << (m.kind == MetricKind::kCounter ? "counter" : "gauge") << '"';
  }
  // Histograms are first-class kinds: their names live in "kinds" like
  // every other metric, their values in the "histograms" object.
  for (const HistogramStats& h : snapshot.histograms) {
    if (!first) out << ',';
    first = false;
    out << '"';
    escape_into(out, h.name);
    out << "\":\"histogram\"";
  }
  out << "},\"timers\":{";
  first = true;
  for (const TimerStats& t : snapshot.timers) {
    if (!first) out << ',';
    first = false;
    out << '"';
    escape_into(out, t.name);
    out << "\":{\"count\":" << t.count << ",\"p50\":";
    number_into(out, t.p50);
    out << ",\"p95\":";
    number_into(out, t.p95);
    out << ",\"max\":";
    number_into(out, t.max);
    out << '}';
  }
  out << "},\"histograms\":{";
  first = true;
  for (const HistogramStats& h : snapshot.histograms) {
    if (!first) out << ',';
    first = false;
    out << '"';
    escape_into(out, h.name);
    out << "\":{\"count\":" << h.count << ",\"sum\":" << h.sum
        << ",\"p50\":";
    number_into(out, h.p50);
    out << ",\"p90\":";
    number_into(out, h.p90);
    out << ",\"p99\":";
    number_into(out, h.p99);
    out << ",\"max\":";
    number_into(out, h.max);
    out << ",\"buckets\":[";
    bool bfirst = true;
    for (const auto& [hi, count] : h.buckets) {
      if (!bfirst) out << ',';
      bfirst = false;
      out << '[' << hi << ',' << count << ']';
    }
    out << "]}";
  }
  out << '}';
  if (samples != nullptr) {
    out << ",\"samples\":[";
    first = true;
    for (const SampleDelta& s : *samples) {
      if (!first) out << ',';
      first = false;
      out << "{\"sequence\":" << s.sequence << ",\"dt_seconds\":";
      number_into(out, s.dt_seconds);
      out << ",\"deltas\":";
      metrics_object_into(out, s.deltas);
      out << '}';
    }
    out << ']';
  }
  out << '}';
}

std::string prometheus_name(const std::string& name) {
  std::string out = "htvm_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string to_json(const TelemetrySnapshot& snapshot) {
  std::ostringstream out;
  body_into(out, snapshot, nullptr);
  return out.str();
}

std::string to_json(const TelemetrySnapshot& snapshot,
                    const std::vector<SampleDelta>& samples) {
  std::ostringstream out;
  body_into(out, snapshot, &samples);
  return out.str();
}

std::string to_prometheus(const TelemetrySnapshot& snapshot) {
  std::ostringstream out;
  for (const MetricValue& m : snapshot.metrics) {
    const std::string name = prometheus_name(m.name);
    out << "# TYPE " << name
        << (m.kind == MetricKind::kCounter ? " counter\n" : " gauge\n");
    out << name << ' ';
    number_into(out, m.value);
    out << '\n';
  }
  for (const TimerStats& t : snapshot.timers) {
    const std::string name = prometheus_name(t.name);
    out << "# TYPE " << name << "_count counter\n"
        << name << "_count " << t.count << '\n';
    const struct {
      const char* suffix;
      double value;
    } quantiles[] = {{"_p50", t.p50}, {"_p95", t.p95}, {"_max", t.max}};
    for (const auto& q : quantiles) {
      out << "# TYPE " << name << q.suffix << " gauge\n"
          << name << q.suffix << ' ';
      number_into(out, q.value);
      out << '\n';
    }
  }
  for (const HistogramStats& h : snapshot.histograms) {
    // Classic Prometheus histogram exposition: cumulative _bucket{le=}
    // series plus _sum/_count, and the pre-computed percentiles as
    // gauges for consumers that don't run histogram_quantile().
    const std::string name = prometheus_name(h.name);
    out << "# TYPE " << name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (const auto& [hi, count] : h.buckets) {
      cumulative += count;
      out << name << "_bucket{le=\"" << hi << "\"} " << cumulative << '\n';
    }
    out << name << "_bucket{le=\"+Inf\"} " << h.count << '\n';
    out << name << "_sum " << h.sum << '\n';
    out << name << "_count " << h.count << '\n';
    const struct {
      const char* suffix;
      double value;
    } quantiles[] = {{"_p50", h.p50}, {"_p90", h.p90},
                     {"_p99", h.p99}, {"_max", h.max}};
    for (const auto& q : quantiles) {
      out << "# TYPE " << name << q.suffix << " gauge\n"
          << name << q.suffix << ' ';
      number_into(out, q.value);
      out << '\n';
    }
  }
  return out.str();
}

bool write_json_file(const std::string& path,
                     const TelemetrySnapshot& snapshot) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot write metrics to %s\n", path.c_str());
    return false;
  }
  const std::string json = to_json(snapshot);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

}  // namespace htvm::obs
