file(REMOVE_RECURSE
  "CMakeFiles/test_claims.dir/claims_test.cc.o"
  "CMakeFiles/test_claims.dir/claims_test.cc.o.d"
  "test_claims"
  "test_claims.pdb"
  "test_claims[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_claims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
