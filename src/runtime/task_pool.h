// Slab/freelist pool of Task slots: the allocation-free SGT spawn path.
//
// Mirrors mem::FrameAllocator's recycle design (and shares its stats
// surface, mem/pool_stats.h): slots are carved from slabs once and then
// recycled forever. Ownership is tiered for the common flows:
//
//   * per-worker caches -- a worker releases the task it just ran into its
//     own cache and the next spawn on that worker pops it back, both
//     lock-free (the cache is owner-only by construction);
//   * a shared overflow list -- when a worker's cache exceeds its cap
//     (work flowed from producer workers to consumer workers, e.g. one
//     node spawns and others steal), half the cache is flushed to the
//     shared list under a spin lock, rebalancing slots back toward the
//     producers, which refill from it in batches on a cache miss;
//   * external threads (no worker identity) allocate/release directly on
//     the shared list.
//
// A slot's contents are synchronized by whatever handed the Task* between
// threads (deque publish fence, inject mutex); the pool itself only needs
// the shared-list lock.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/pool_stats.h"
#include "runtime/task.h"
#include "util/spinlock.h"

namespace htvm::rt {

class TaskPool {
 public:
  // Tunables: slabs of 64 slots (8 KiB at sizeof(Task)==128); caches flush
  // half above 256 slots and refill 32 at a time, so steady-state producer
  // -> consumer flows touch the shared lock once per ~128 tasks.
  static constexpr std::size_t kSlabSlots = 64;
  static constexpr std::size_t kCacheCap = 256;
  static constexpr std::size_t kRefillBatch = 32;

  explicit TaskPool(std::uint32_t workers);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  // Returns an empty slot. `worker` is the caller's worker id, or any
  // negative value from a thread that is not a runtime worker.
  Task* allocate(std::int32_t worker);
  // Returns a slot whose Task has been invoked or reset (i.e. empty).
  void release(Task* slot, std::int32_t worker);

  mem::PoolStatsSnapshot stats() const { return stats_.snapshot(); }

 private:
  struct alignas(64) WorkerCache {
    std::vector<Task*> free;  // touched only by the owning worker
  };

  // Carves a fresh slab and returns one slot, pushing the rest onto
  // `cache` (nullptr: onto the shared list). Called on recycle miss.
  Task* carve_slab(std::vector<Task*>* cache);

  std::vector<WorkerCache> caches_;
  util::SpinLock shared_lock_;
  std::vector<Task*> shared_free_;
  std::vector<std::unique_ptr<Task[]>> slabs_;  // guarded by shared_lock_
  mem::PoolStats stats_;
};

}  // namespace htvm::rt
