#!/usr/bin/env python3
"""Live runtime inspector over the htvm.status.v1 JSONL stream.

A runtime started with HTVM_STATUS_PERIOD_MS=<ms> (and optionally
HTVM_STATUS_PATH=<file>, default stderr) appends one JSON status line per
period plus a final one at shutdown. This tool renders that stream as a
top-style table:

    HTVM_STATUS_PERIOD_MS=100 HTVM_STATUS_PATH=/tmp/htvm.status ./my_bench &
    tools/htvm_top.py /tmp/htvm.status              # follow live
    tools/htvm_top.py /tmp/htvm.status --once       # latest record, one shot

--once parses the whole file, prints the newest valid record, and exits
nonzero if the file holds no valid htvm.status.v1 line — which is what the
bench-smoke ctest gate runs.
"""

import argparse
import json
import sys
import time

SCHEMA = "htvm.status.v1"


def parse_line(line):
    """Returns the status dict, or None for blank/foreign/corrupt lines."""
    line = line.strip()
    if not line or not line.startswith("{"):
        return None
    try:
        doc = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(doc, dict) or doc.get("schema") != SCHEMA:
        return None
    if not isinstance(doc.get("workers"), list):
        return None
    return doc


def fmt_ns(ns):
    ns = float(ns)
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.1f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.1f}us"
    return f"{ns:.0f}ns"


def render(doc, out=sys.stdout):
    print(f"htvm_top: uptime {doc.get('uptime_s', 0):.2f}s  "
          f"outstanding {doc.get('outstanding', 0)}", file=out)
    header = (f"{'wkr':>4} {'node':>4} {'state':>6} {'deque':>6} "
              f"{'sgts':>10} {'steals':>8} {'busy':>9} {'steal':>9} "
              f"{'park':>9}")
    print(header, file=out)
    for w in doc["workers"]:
        print(f"{w.get('id', '?'):>4} {w.get('node', '?'):>4} "
              f"{w.get('state', '?'):>6} {w.get('deque', 0):>6} "
              f"{w.get('sgts', 0):>10} {w.get('steals', 0):>8} "
              f"{fmt_ns(w.get('busy_ns', 0)):>9} "
              f"{fmt_ns(w.get('steal_ns', 0)):>9} "
              f"{fmt_ns(w.get('park_ns', 0)):>9}", file=out)
    lat = doc.get("lat", {})
    for name in ("queue_wait", "run", "steal_round"):
        h = lat.get(name)
        if not isinstance(h, dict):
            continue
        print(f"  lat.{name:<12} count={h.get('count', 0):<10} "
              f"p50={fmt_ns(h.get('p50', 0)):<8} "
              f"p90={fmt_ns(h.get('p90', 0)):<8} "
              f"p99={fmt_ns(h.get('p99', 0)):<8} "
              f"max={fmt_ns(h.get('max', 0))}", file=out)
    mix = doc.get("steal_mix", {})
    if mix:
        print("  steal mix: " +
              " ".join(f"{k}={mix[k]}" for k in sorted(mix)), file=out)


def follow(path, interval):
    """Tail the file, re-rendering on every new valid record."""
    pos = 0
    while True:
        try:
            with open(path) as f:
                f.seek(pos)
                for line in f:
                    doc = parse_line(line)
                    if doc is not None:
                        print("\033[2J\033[H", end="")
                        render(doc)
                pos = f.tell()
        except OSError:
            pass  # not created yet; keep polling
        time.sleep(interval)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", help="htvm.status.v1 JSONL file to read")
    parser.add_argument("--once", action="store_true",
                        help="print the newest record and exit; nonzero "
                             "exit if the file holds no valid record")
    parser.add_argument("--interval", type=float, default=0.5,
                        help="poll interval in seconds when following")
    args = parser.parse_args()

    if not args.once:
        try:
            follow(args.path, args.interval)
        except KeyboardInterrupt:
            return 0
        return 0

    try:
        with open(args.path) as f:
            records = [d for d in map(parse_line, f) if d is not None]
    except OSError as e:
        print(f"htvm_top: {args.path}: {e}", file=sys.stderr)
        return 1
    if not records:
        print(f"htvm_top: {args.path}: no valid {SCHEMA} records",
              file=sys.stderr)
        return 1
    render(records[-1])
    print(f"htvm_top: {len(records)} records in {args.path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
