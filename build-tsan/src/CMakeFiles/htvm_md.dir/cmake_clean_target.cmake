file(REMOVE_RECURSE
  "libhtvm_md.a"
)
