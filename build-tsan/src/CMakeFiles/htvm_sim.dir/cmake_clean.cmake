file(REMOVE_RECURSE
  "CMakeFiles/htvm_sim.dir/sim/engine.cc.o"
  "CMakeFiles/htvm_sim.dir/sim/engine.cc.o.d"
  "CMakeFiles/htvm_sim.dir/sim/locality.cc.o"
  "CMakeFiles/htvm_sim.dir/sim/locality.cc.o.d"
  "CMakeFiles/htvm_sim.dir/sim/machine.cc.o"
  "CMakeFiles/htvm_sim.dir/sim/machine.cc.o.d"
  "CMakeFiles/htvm_sim.dir/sim/task.cc.o"
  "CMakeFiles/htvm_sim.dir/sim/task.cc.o.d"
  "libhtvm_sim.a"
  "libhtvm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htvm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
