// The experimental testbed (paper §5.1): one executable that assembles a
// machine from a config file, loads a domain expert's hint script, runs a
// selected workload, and prints the full feedback report -- the loop of
// Fig. 1 end to end.
//
//   ./build/examples/testbed [workload] [machine.cfg] [script.hints]
//                            [trace.json]   (all but workload optional)
//
// workload: synthetic (default) | neuro | md
// machine.cfg: `key = value` lines per machine/config.h (optional)
// script.hints: structured hints per hints/hints.h (optional)
// trace.json: writes a chrome://tracing-compatible execution trace
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "litlx/litlx.h"
#include "md/integrate.h"
#include "neuro/simulation.h"

using namespace htvm;

namespace {

std::string read_file(const char* path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void run_synthetic(litlx::Machine& machine) {
  std::printf("workload: synthetic (hierarchy + loop + collective)\n");
  // An LGT per node runs a skewed loop and joins an allreduce.
  const std::uint32_t nodes = machine.runtime().num_nodes();
  for (std::uint32_t node = 0; node < nodes; ++node) {
    machine.spawn_lgt(node, [&machine] {
      litlx::ForallOptions opts;
      opts.site = "testbed_loop";
      litlx::forall(machine, 0, 5000, [](std::int64_t i) {
        volatile double x = 1.0;
        for (std::int64_t k = 0; k < i % 97; ++k) x = x * 1.0001 + 1.0;
      }, opts);
    });
  }
  machine.wait_idle();
  const std::int64_t total = litlx::Machine::await(litlx::reduce_i64(
      machine, 0, [](std::uint32_t n) { return std::int64_t{n + 1}; },
      [](std::int64_t a, std::int64_t b) { return a + b; }));
  std::printf("collective check: sum over nodes = %lld\n",
              static_cast<long long>(total));
}

void run_neuro(litlx::Machine& machine) {
  std::printf("workload: neuroscience (hub-skewed spiking network)\n");
  neuro::NetworkParams params;
  params.columns = 24;
  params.neurons_per_column = 120;
  params.hub_fraction = 0.15;
  params.hub_scale = 5.0;
  neuro::Network network(params);
  neuro::Simulation sim(machine, network);
  sim.run(100);
  std::printf("spikes: %llu  synaptic events: %llu\n",
              static_cast<unsigned long long>(sim.stats().spikes),
              static_cast<unsigned long long>(
                  sim.stats().spike_deliveries));
}

void run_md(litlx::Machine& machine) {
  std::printf("workload: molecular dynamics (protein + water + ions)\n");
  md::System system(md::MdParams::protein_in_water(300, 8));
  md::Integrator::Options opts;
  opts.use_verlet = true;
  md::Integrator integrator(machine, system, opts);
  const md::StepReport first = integrator.step();
  md::StepReport last = first;
  for (int s = 0; s < 60; ++s) last = integrator.step();
  std::printf("energy: %.4f -> %.4f (drift %.2e), neighbour rebuilds: %llu\n",
              first.total_energy(), last.total_energy(),
              (last.total_energy() - first.total_energy()) /
                  std::abs(first.total_energy()),
              static_cast<unsigned long long>(
                  integrator.neighbor_rebuilds()));
}

}  // namespace

int main(int argc, char** argv) {
  const char* workload = argc > 1 ? argv[1] : "synthetic";

  litlx::MachineOptions options;
  options.config.nodes = 2;
  options.config.thread_units_per_node = 2;
  if (argc > 2) {
    const std::string cfg_text = read_file(argv[2]);
    if (cfg_text.empty()) {
      std::fprintf(stderr, "error: cannot read machine config %s\n",
                   argv[2]);
      return 2;
    }
    const std::string err = options.config.parse(cfg_text);
    if (!err.empty()) {
      std::fprintf(stderr, "machine config error: %s\n", err.c_str());
      return 2;
    }
  }
  if (argc > 3) {
    options.hint_script = read_file(argv[3]);
    if (options.hint_script.empty()) {
      std::fprintf(stderr, "error: cannot read hint script %s\n", argv[3]);
      return 2;
    }
  }

  litlx::Machine machine(options);
  trace::Tracer tracer(1 << 18);
  if (argc > 4) {
    machine.runtime().set_tracer(&tracer);
    tracer.enable();
  }
  if (std::strcmp(workload, "neuro") == 0) run_neuro(machine);
  else if (std::strcmp(workload, "md") == 0) run_md(machine);
  else run_synthetic(machine);
  machine.wait_idle();

  if (argc > 4) {
    tracer.disable();
    std::ofstream out(argv[4]);
    out << tracer.to_chrome_json();
    std::printf("trace: %zu events written to %s (dropped %llu)\n",
                tracer.size(), argv[4],
                static_cast<unsigned long long>(tracer.dropped()));
  }
  std::printf("\n%s", machine.report().c_str());

  // Close the Fig. 3 loop: the monitor's evidence becomes a draft hint
  // script for the domain expert to refine.
  adapt::HintAdvisor advisor(machine.monitor(), &machine.controller());
  const std::string draft = advisor.advise_script();
  std::printf("\n--- advisor draft hints ---\n%s", draft.c_str());
  return 0;
}
