
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/data_object.cc" "src/CMakeFiles/htvm_mem.dir/mem/data_object.cc.o" "gcc" "src/CMakeFiles/htvm_mem.dir/mem/data_object.cc.o.d"
  "/root/repo/src/mem/frame.cc" "src/CMakeFiles/htvm_mem.dir/mem/frame.cc.o" "gcc" "src/CMakeFiles/htvm_mem.dir/mem/frame.cc.o.d"
  "/root/repo/src/mem/global_memory.cc" "src/CMakeFiles/htvm_mem.dir/mem/global_memory.cc.o" "gcc" "src/CMakeFiles/htvm_mem.dir/mem/global_memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/htvm_machine.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/htvm_sync.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/htvm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
