#include "runtime/fiber.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>

// TSan tracks per-stack shadow state and corrupts (then crashes) when a
// raw swapcontext moves execution to a stack it has never seen. Its fiber
// API exists for exactly this: announce each fiber and each switch.
#if defined(__SANITIZE_THREAD__)
#define HTVM_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HTVM_TSAN_FIBERS 1
#endif
#endif
#ifdef HTVM_TSAN_FIBERS
#include <sanitizer/tsan_interface.h>
#endif

namespace htvm::rt {

namespace {
thread_local Fiber* tl_current_fiber = nullptr;
}  // namespace

Fiber::Fiber(std::function<void()> entry, std::size_t stack_bytes)
    : entry_(std::move(entry)),
      stack_bytes_(stack_bytes),
      stack_(std::make_unique<std::byte[]>(stack_bytes)) {
  if (getcontext(&context_) != 0) {
    std::fprintf(stderr, "htvm::rt: getcontext failed\n");
    std::abort();
  }
  context_.uc_stack.ss_sp = stack_.get();
  context_.uc_stack.ss_size = stack_bytes_;
  context_.uc_link = nullptr;  // completion handled in the trampoline
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  // makecontext passes ints only; split the pointer for 64-bit safety.
  makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
              static_cast<unsigned>(self >> 32),
              static_cast<unsigned>(self & 0xffffffffu));
#ifdef HTVM_TSAN_FIBERS
  tsan_fiber_ = __tsan_create_fiber(0);
#endif
}

Fiber::~Fiber() {
#ifdef HTVM_TSAN_FIBERS
  // A fiber is never destroyed while running on its own stack.
  if (tsan_fiber_ != nullptr) __tsan_destroy_fiber(tsan_fiber_);
#endif
}

void Fiber::trampoline(unsigned hi, unsigned lo) {
  const std::uintptr_t bits =
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo);
  reinterpret_cast<Fiber*>(bits)->run_entry();
}

void Fiber::run_entry() {
  entry_();
  finished_ = true;
  // Return to whichever thread performed the final resume. Never falls off
  // the trampoline (uc_link is null; falling off would exit the thread).
#ifdef HTVM_TSAN_FIBERS
  __tsan_switch_to_fiber(tsan_return_, 0);
#endif
  swapcontext(&context_, &return_context_);
  std::fprintf(stderr, "htvm::rt: finished fiber resumed\n");
  std::abort();
}

void Fiber::resume() {
  if (finished_) {
    std::fprintf(stderr, "htvm::rt: resume on finished fiber\n");
    std::abort();
  }
  Fiber* const prev = tl_current_fiber;
  tl_current_fiber = this;
  started_ = true;
#ifdef HTVM_TSAN_FIBERS
  // Re-captured on every resume: the fiber may be resumed from a
  // different OS thread (LGT migration) than the one that last ran it.
  tsan_return_ = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
  swapcontext(&return_context_, &context_);
  tl_current_fiber = prev;
}

void Fiber::yield() {
  Fiber* const self = tl_current_fiber;
  if (self == nullptr) {
    std::fprintf(stderr, "htvm::rt: Fiber::yield outside a fiber\n");
    std::abort();
  }
#ifdef HTVM_TSAN_FIBERS
  __tsan_switch_to_fiber(self->tsan_return_, 0);
#endif
  swapcontext(&self->context_, &self->return_context_);
}

Fiber* Fiber::current() { return tl_current_fiber; }

}  // namespace htvm::rt
