// Shared helpers for the experiment harnesses (bench_e*).
//
// Each harness regenerates one experiment from DESIGN.md section 4 and
// prints its series as a fixed-width table, in the spirit of the tables a
// paper reports. Deterministic experiments run on the virtual-time
// simulator; real-overhead experiments (E1, E13) use google-benchmark.
//
// Every harness also accepts:
//   --json <path>   write the run's series as machine-readable JSON
//                   (schema below) -- BENCH_baseline.json is built from
//                   these emissions so PRs can track a perf trajectory;
//   --smoke         tiny iteration counts, for the `bench-smoke` ctest
//                   label (exercises the hot path + emitters, not perf).
//
// JSON schema:
//   { "experiment": "...", "smoke": bool,
//     "sections": [ { "name": "...",
//                     "rows": [ { "<column>": <number|string>, ... } ] } ],
//     "telemetry": { ...htvm.telemetry.v1 document... } }   // optional
// The telemetry member is present when the harness called set_telemetry()
// with an obs::to_json() document (see src/obs/export.h).
#pragma once

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "util/stats.h"

namespace htvm::bench {

using util::TextTable;

inline void print_header(const char* experiment, const char* claim) {
  std::printf("=== %s ===\n", experiment);
  std::printf("paper claim: %s\n\n", claim);
}

inline void print_table(const util::TextTable& table) {
  std::printf("%s\n", table.to_string().c_str());
}

namespace detail {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

// Emits a cell as a JSON number when it parses fully as one (the tables
// format numbers as plain decimals), otherwise as a quoted string. "inf"
// and "nan" parse via strtod but are not valid JSON, so they stay quoted.
inline std::string json_cell(const std::string& cell) {
  if (!cell.empty()) {
    char* end = nullptr;
    errno = 0;
    const double v = std::strtod(cell.c_str(), &end);
    if (errno == 0 && end != nullptr && *end == '\0' && std::isfinite(v))
      return cell;
  }
  return "\"" + json_escape(cell) + "\"";
}

}  // namespace detail

// Collects every printed table and, when --json was given, writes them as
// one JSON document on finish()/destruction.
class Reporter {
 public:
  // Consumes --json <path> and --smoke from argv (compacting it) so the
  // remaining flags can go to another parser (e.g. google-benchmark).
  Reporter(int* argc, char** argv, std::string experiment)
      : experiment_(std::move(experiment)) {
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0 && i + 1 < *argc) {
        json_path_ = argv[++i];
      } else if (std::strcmp(argv[i], "--smoke") == 0) {
        smoke_ = true;
      } else {
        argv[out++] = argv[i];
      }
    }
    *argc = out;
  }

  Reporter(int argc, char** argv, std::string experiment)
      : Reporter(&argc, argv, std::move(experiment)) {}

  Reporter(const Reporter&) = delete;
  Reporter& operator=(const Reporter&) = delete;

  ~Reporter() { finish(); }

  bool smoke() const { return smoke_; }
  const std::string& json_path() const { return json_path_; }

  // Prints the table (like print_table) and records it under `section`.
  void table(const std::string& section, const util::TextTable& t) {
    print_table(t);
    sections_.emplace_back(section, t);
  }

  // Records without printing (for data already echoed another way).
  void record(const std::string& section, const util::TextTable& t) {
    sections_.emplace_back(section, t);
  }

  // Attaches a pre-serialized telemetry JSON object (obs::to_json output)
  // to be embedded verbatim as the document's "telemetry" member.
  void set_telemetry(std::string telemetry_json) {
    telemetry_json_ = std::move(telemetry_json);
  }

  // Writes the JSON document if --json was given. Idempotent.
  void finish() {
    if (json_path_.empty() || written_) return;
    written_ = true;
    std::FILE* f = std::fopen(json_path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", json_path_.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"experiment\": \"%s\",\n  \"smoke\": %s,\n",
                 detail::json_escape(experiment_).c_str(),
                 smoke_ ? "true" : "false");
    std::fprintf(f, "  \"sections\": [");
    for (std::size_t s = 0; s < sections_.size(); ++s) {
      const auto& [name, t] = sections_[s];
      std::fprintf(f, "%s\n    {\"name\": \"%s\", \"rows\": [",
                   s == 0 ? "" : ",", detail::json_escape(name).c_str());
      const auto& headers = t.headers();
      const auto& rows = t.rows();
      for (std::size_t r = 0; r < rows.size(); ++r) {
        std::fprintf(f, "%s\n      {", r == 0 ? "" : ",");
        for (std::size_t c = 0; c < headers.size() && c < rows[r].size();
             ++c) {
          std::fprintf(f, "%s\"%s\": %s", c == 0 ? "" : ", ",
                       detail::json_escape(headers[c]).c_str(),
                       detail::json_cell(rows[r][c]).c_str());
        }
        std::fprintf(f, "}");
      }
      std::fprintf(f, "\n    ]}");
    }
    std::fprintf(f, "\n  ]");
    if (!telemetry_json_.empty()) {
      std::fprintf(f, ",\n  \"telemetry\": %s", telemetry_json_.c_str());
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path_.c_str());
  }

 private:
  std::string experiment_;
  std::string json_path_;
  std::string telemetry_json_;
  bool smoke_ = false;
  bool written_ = false;
  std::vector<std::pair<std::string, util::TextTable>> sections_;
};

}  // namespace htvm::bench
