// ParcelEngine: per-node inboxes + delivery timing + handler dispatch,
// with an optional reliable-delivery protocol over a faulty network model.
//
// Senders never block (split-transaction discipline): send/request/invoke_at
// enqueue the parcel with a delivery deadline derived from the machine's
// network model and return immediately. Destination-node workers drain due
// parcels through the runtime's poller hook, executing handlers on the
// receiving node. Replies are parcels in the opposite direction, fulfilling
// the requester's Future -- the paper's split transaction.
//
// Reliability. When the machine's NetworkFaultModel is active (or
// reliability is forced on), every cross-node data parcel travels under a
// stop-and-wait-per-message protocol:
//   * the sender assigns a per-(src,dst) sequence number and keeps the
//     parcel in a per-source retransmit table;
//   * each physical traversal is subject to the fault model (drop,
//     duplicate, jitter), realized by machine::NetworkFaultInjector;
//   * the receiver suppresses duplicates (per-stream contiguous watermark +
//     out-of-order set, so state stays bounded) and acks every copy;
//   * acks erase the retransmit entry; a timeout (exponential backoff,
//     capped) retransmits; after max_retries the parcel is dead-lettered:
//     its requester Future is resolved with an empty payload so callers
//     and wait_idle() never hang on a lost message.
// The retransmit timer rides the runtime's per-node poller hook, and each
// in-flight reliable parcel holds a runtime work token, so idleness
// accounting stays exact: wait_idle() returns only once every logical
// parcel is acknowledged or dead-lettered.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <queue>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "parcel/parcel.h"
#include "runtime/runtime.h"
#include "sync/future.h"

namespace htvm::parcel {

// Point-in-time value snapshot of the engine's counters, as returned by
// ParcelEngine::stats(). Copyable plain integers: callers get one coherent
// reading instead of a reference into live atomics whose fields could move
// between loads. The same counters are registered as "parcel.*" sources in
// the runtime's metrics registry.
struct EngineStats {
  std::uint64_t sent = 0;       // logical data parcels submitted
  std::uint64_t delivered = 0;  // handler/closure executions
  std::uint64_t replies = 0;
  std::uint64_t bytes = 0;
  // Reliable-transport counters (all zero on an ideal network).
  std::uint64_t retries = 0;         // timeout retransmissions
  std::uint64_t drops = 0;           // physical copies lost
  std::uint64_t duplicates = 0;      // physical copies cloned
  std::uint64_t dup_suppressed = 0;  // receiver-side dedup hits
  std::uint64_t acks = 0;            // acks received by senders
  std::uint64_t dead_letters = 0;    // parcels given up on
};

// Reliable-delivery knobs. Timeouts are host-time: the floor covers the
// functional backend (cycle_ns = 0, where modeled delivery is immediate but
// polling cadence is not); on a latency-injected backend the engine adds
// the modeled round trip on top of `base_timeout` automatically.
struct ReliabilityOptions {
  enum class Mode : std::uint8_t { kAuto = 0, kOff = 1, kOn = 2 };
  // kAuto: reliable exactly when the machine's fault model is active.
  Mode mode = Mode::kAuto;
  // Retransmissions before a parcel is dead-lettered. 0 = first timeout
  // dead-letters (retries disabled).
  std::uint32_t max_retries = 10;
  std::chrono::nanoseconds base_timeout{300'000};  // 300 us floor
  double backoff = 2.0;                            // timeout *= backoff/retry
  std::chrono::nanoseconds max_timeout{10'000'000};  // 10 ms backoff cap
};

class ParcelEngine {
 public:
  // Registers itself as a poller on the runtime; construct the engine
  // before spawning work that sends parcels.
  explicit ParcelEngine(rt::Runtime& runtime,
                        ReliabilityOptions reliability = {});
  ~ParcelEngine();

  ParcelEngine(const ParcelEngine&) = delete;
  ParcelEngine& operator=(const ParcelEngine&) = delete;

  // Handler registration (do this before any sends that use the id).
  HandlerId register_handler(std::string name, Handler handler);
  HandlerId handler_id(const std::string& name) const;

  // One-way parcel.
  void send(std::uint32_t dst_node, HandlerId handler, Payload payload);

  // Split transaction: the future is fulfilled with the handler's reply
  // payload after the return trip. The caller typically continues other
  // work and awaits the future later (or chains with .on_ready). If the
  // request (or its reply) is dead-lettered, the future resolves with an
  // empty payload and stats().dead_letters is incremented -- it never
  // hangs.
  sync::Future<Payload> request(std::uint32_t dst_node, HandlerId handler,
                                Payload payload);

  // Move work to data: run `fn` on `dst_node`. `modeled_bytes` sizes the
  // parcel for the network-latency model (code descriptor + captured args).
  void invoke_at(std::uint32_t dst_node, std::uint64_t modeled_bytes,
                 std::function<void()> fn);

  EngineStats stats() const;
  rt::Runtime& runtime() { return runtime_; }
  // True when cross-node data parcels are sequence-numbered and acked.
  bool reliable() const { return reliable_; }

  // Drains due parcels for `node` and runs its retransmit timer; returns
  // true if any work ran. Wired into the runtime's poller hook
  // automatically; exposed for deterministic tests.
  bool poll(std::uint32_t node);

 private:
  using Clock = std::chrono::steady_clock;

  // Live counters the workers bump; stats() and the registry sources read
  // them relaxed (monotonic diagnostics, not synchronization).
  struct AtomicEngineStats {
    std::atomic<std::uint64_t> sent{0};
    std::atomic<std::uint64_t> delivered{0};
    std::atomic<std::uint64_t> replies{0};
    std::atomic<std::uint64_t> bytes{0};
    std::atomic<std::uint64_t> retries{0};
    std::atomic<std::uint64_t> drops{0};
    std::atomic<std::uint64_t> duplicates{0};
    std::atomic<std::uint64_t> dup_suppressed{0};
    std::atomic<std::uint64_t> acks{0};
    std::atomic<std::uint64_t> dead_letters{0};
  };

  struct Timed {
    Clock::time_point due;
    std::uint64_t order;
    std::shared_ptr<Parcel> parcel;
    bool operator>(const Timed& other) const {
      if (due != other.due) return due > other.due;
      return order > other.order;
    }
  };

  struct Inbox {
    std::mutex mutex;
    std::priority_queue<Timed, std::vector<Timed>, std::greater<>> queue;
  };

  // Sender-side retransmit record for one un-acked reliable parcel.
  struct PendingTx {
    std::shared_ptr<Parcel> parcel;
    Clock::time_point deadline;
    Clock::duration timeout;  // current (pre-backoff) value
    std::uint32_t retries = 0;
  };

  // Per source node: everything this node has in flight, keyed by
  // (dst_node, seq) packed into 64 bits.
  struct TxState {
    std::mutex mutex;
    std::unordered_map<std::uint64_t, PendingTx> pending;
  };

  // Receiver-side duplicate suppression for one (src -> this node) stream:
  // every seq <= contiguous has been delivered; out-of-order arrivals
  // above the watermark are tracked explicitly and folded in when the gap
  // closes, so memory stays proportional to reordering, not traffic.
  struct RxStream {
    std::uint64_t contiguous = 0;
    std::set<std::uint64_t> out_of_order;
  };

  struct RxState {
    std::mutex mutex;
    std::vector<RxStream> streams;  // indexed by src node
  };

  static std::uint64_t tx_key(std::uint32_t dst, std::uint64_t seq) {
    return (static_cast<std::uint64_t>(dst) << 48) | (seq & 0xFFFFFFFFFFFFull);
  }

  // Logical submission: stats, sequence assignment, retransmit
  // registration, then first physical transmission.
  void submit(std::shared_ptr<Parcel> parcel);
  // One physical transmission attempt: applies the fault model (drop /
  // duplicate / jitter) and enqueues the surviving copies.
  void transmit(const std::shared_ptr<Parcel>& parcel);
  void enqueue_physical(std::shared_ptr<Parcel> parcel,
                        Clock::time_point due);
  void send_ack(const Parcel& data, std::uint32_t node);
  void handle_ack(const Parcel& ack, std::uint32_t node);
  // True if this reliable parcel was already delivered (duplicate).
  bool already_seen(const Parcel& parcel, std::uint32_t node);
  // Scans `node`'s retransmit table: re-sends expired entries, dead-letters
  // exhausted ones. Returns true if it acted on anything.
  bool run_retransmit_timer(std::uint32_t node);
  void dead_letter(std::shared_ptr<Parcel> parcel);

  void deliver(Parcel& parcel, std::uint32_t node);
  Clock::duration network_delay(std::uint32_t src, std::uint32_t dst,
                                std::uint64_t bytes) const;
  Clock::duration retransmit_timeout(const Parcel& parcel) const;
  void trace_transport(const char* name, const Parcel& parcel);
  // Flow-arrow id binding one reliable parcel's send -> retry -> deliver
  // events: (src,dst) stream index in the high bits, sequence in the low.
  std::uint64_t flow_key(const Parcel& parcel) const;
  void trace_flow(const char* name, trace::Phase phase, const Parcel& parcel,
                  std::uint32_t lane);
  void register_metrics();

  rt::Runtime& runtime_;
  rt::Runtime::PollerId poller_id_ = 0;
  ReliabilityOptions reliability_options_;
  bool reliable_ = false;
  machine::NetworkFaultInjector faults_;
  std::vector<std::unique_ptr<Inbox>> inboxes_;
  std::vector<std::unique_ptr<TxState>> tx_;
  std::vector<std::unique_ptr<RxState>> rx_;
  // Per (src,dst) stream sequence counters, row-major [src * nodes + dst].
  std::vector<std::atomic<std::uint64_t>> tx_seq_;
  mutable std::mutex handlers_mutex_;
  std::vector<Handler> handlers_;
  std::unordered_map<std::string, HandlerId> handler_names_;
  std::atomic<std::uint64_t> order_{0};  // inbox FIFO tie-break
  AtomicEngineStats stats_;
  std::vector<obs::MetricsRegistry::SourceId> metric_sources_;
};

}  // namespace htvm::parcel
