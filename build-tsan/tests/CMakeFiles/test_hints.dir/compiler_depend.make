# Empty compiler generated dependencies file for test_hints.
# This may be replaced when dependencies are built.
