// Latency realization for the *real* runtime backend.
//
// The discrete-event simulator charges model cycles directly; the real
// runtime instead injects calibrated busy-wait delays so that a program
// running on host threads experiences the configured machine's latency
// ratios (e.g. a remote get really does stall ~10x longer than a local DRAM
// access). Calibration measures the host's busy-wait throughput once and
// converts model cycles to host nanoseconds at a configurable clock.
#pragma once

#include <chrono>
#include <cstdint>

#include "machine/config.h"
#include "util/rng.h"
#include "util/spinlock.h"

namespace htvm::machine {

// Busy-waits for approximately `ns` nanoseconds without yielding the CPU.
// Monotonic-clock based, so it is immune to frequency scaling in a way a
// pure loop-count calibration would not be.
void spin_for_ns(std::uint64_t ns);

class LatencyInjector {
 public:
  // `cycle_ns` converts model cycles to host nanoseconds; the default of
  // 1 ns/cycle models a 1 GHz part. A scale of 0 disables injection (useful
  // in unit tests that only check functional behaviour).
  explicit LatencyInjector(const MachineConfig& config, double cycle_ns = 1.0);

  void set_cycle_ns(double cycle_ns) { cycle_ns_ = cycle_ns; }
  double cycle_ns() const { return cycle_ns_; }
  bool enabled() const { return cycle_ns_ > 0.0; }

  // Stalls the caller for the modeled duration of the given event.
  void mem_access(MemLevel level) const;
  void remote_access(std::uint32_t from_node, std::uint32_t to_node,
                     std::uint64_t bytes) const;
  void network_transfer(std::uint32_t from_node, std::uint32_t to_node,
                        std::uint64_t bytes) const;
  void spawn_cost(int thread_level) const;  // 0=LGT, 1=SGT, 2=TGT

  void cycles(std::uint64_t c) const;

  const MachineConfig& config() const { return config_; }

 private:
  MachineConfig config_;
  double cycle_ns_;
};

// Cycle-count helper: converts a host duration back into model cycles for
// reporting (monitor, benches).
std::uint64_t ns_to_cycles(std::chrono::nanoseconds ns, double cycle_ns);

// Realizes the NetworkFaultModel: per-traversal drop/duplicate trials and
// jitter draws from one seeded Xoshiro256 stream. Thread-safe (senders on
// every worker share it); a spinlock is fine because each draw is a few
// dozen cycles. With an inactive model every query is a cheap constant.
class NetworkFaultInjector {
 public:
  explicit NetworkFaultInjector(const NetworkFaultModel& model)
      : model_(model), rng_(model.seed) {}

  bool active() const { return model_.active(); }
  const NetworkFaultModel& model() const { return model_; }

  // Samples one link traversal: should the packet be lost?
  bool should_drop() {
    if (model_.drop_probability <= 0.0) return false;
    util::Guard<util::SpinLock> g(lock_);
    return rng_.next_bool(model_.drop_probability);
  }

  // Samples one accepted traversal: does the network deliver a second copy?
  bool should_duplicate() {
    if (model_.duplicate_probability <= 0.0) return false;
    util::Guard<util::SpinLock> g(lock_);
    return rng_.next_bool(model_.duplicate_probability);
  }

  // Extra delay for one traversal, uniform in [0, jitter_cycles] cycles.
  std::uint64_t jitter_cycles() {
    if (model_.jitter_cycles == 0) return 0;
    util::Guard<util::SpinLock> g(lock_);
    return rng_.next_below(static_cast<std::uint64_t>(model_.jitter_cycles) +
                           1);
  }

 private:
  NetworkFaultModel model_;
  util::SpinLock lock_;
  util::Xoshiro256 rng_;
};

}  // namespace htvm::machine
