# Empty dependencies file for bench_e13_sync.
# This may be replaced when dependencies are built.
