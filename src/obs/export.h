// Exposition of a TelemetrySnapshot: one JSON schema shared by benches,
// tests, and the HTVM_METRICS=<path> end-of-run dump, plus a
// Prometheus-text rendering for scrape-style consumers.
//
// JSON schema ("htvm.telemetry.v1"):
//   { "schema": "htvm.telemetry.v1",
//     "sequence": N, "uptime_seconds": S,
//     "metrics": { "<name>": <number>, ... },           // sorted by name
//     "kinds":   { "<name>": "counter"|"gauge"|"histogram", ... },
//     "timers":  { "<name>": {"count":N,"p50":X,"p95":X,"max":X}, ... },
//     "histograms": { "<name>": {"count":N,"sum":N,"p50":X,"p90":X,
//                                "p99":X,"max":X,
//                                "buckets":[[le,count],...]}, ... },
//     "samples": [ { "sequence": N, "dt_seconds": S,
//                    "deltas": { "<name>": <number>, ... } }, ... ] }
// "kinds" covers the union of "metrics" and "histograms" names (the
// histogram entries carry kind "histogram" and live only in
// "histograms"). Histogram buckets are sparse, ascending {exclusive
// upper bound, count} pairs from the log-bucketed obs::Histogram.
// "samples" is present only when Sampler deltas are passed in; counter
// deltas are per-interval increments, gauge entries are the level at the
// sample instant.
#pragma once

#include <string>
#include <vector>

#include "obs/registry.h"
#include "obs/sampler.h"

namespace htvm::obs {

std::string to_json(const TelemetrySnapshot& snapshot);
std::string to_json(const TelemetrySnapshot& snapshot,
                    const std::vector<SampleDelta>& samples);

// Prometheus text exposition (metric names have dots mapped to
// underscores and an "htvm_" prefix; timers render as three gauges:
// _p50 / _p95 / _max plus a _count counter).
std::string to_prometheus(const TelemetrySnapshot& snapshot);

// Writes `snapshot` as JSON to `path`; returns false (and logs to stderr)
// on I/O failure. Used by the HTVM_METRICS end-of-run dump.
bool write_json_file(const std::string& path,
                     const TelemetrySnapshot& snapshot);

}  // namespace htvm::obs
